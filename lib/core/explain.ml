open Fsam_dsa
open Fsam_ir
module A = Fsam_andersen.Solver
module Mta = Fsam_mta
module Svfg = Fsam_memssa.Svfg
module Obs = Fsam_obs
module P = Fsam_prov
module J = Fsam_obs.Json

type site = At_var of Stmt.var | At_mem of { node : int; cont : int } | At_avar of int

type step = { site : site; obj : int; tag : int; x : int; y : int; z : int }

(* Each explain query observes its wall cost so `--json` telemetry shows the
   price of provenance walks alongside the analysis phases. *)
let timed name f =
  let t0 = Obs.Monotonic.now_us () in
  let r = f () in
  Obs.Metrics.observe (Obs.Metrics.histogram name) (Obs.Monotonic.elapsed_us ~since_us:t0);
  r

(* ------------------------------------------------------------------------ *)
(* Points-to derivation chains                                              *)
(* ------------------------------------------------------------------------ *)

(* The recorder guarantees each reason was written strictly after the
   reasons of its antecedents, so chains terminate; the visited set and
   depth bound are belt-and-braces against any post-collapse aliasing of
   Andersen representatives. *)
let walk_sparse r d ~max_depth v o =
  let steps = ref [] in
  let n = ref 0 in
  let visited = Hashtbl.create 16 in
  let emit site tag x y z = steps := { site; obj = o; tag; x; y; z } :: !steps in
  let rec go site depth =
    if depth < max_depth && not (Hashtbl.mem visited site) then begin
      Hashtbl.replace visited site ();
      incr n;
      let reason =
        match site with
        | At_var v -> P.find r ~space:P.sp_var ~k1:v ~k2:0 ~obj:o
        | At_mem { node; cont } -> P.find r ~space:P.sp_mem ~k1:node ~k2:cont ~obj:o
        | At_avar _ -> None
      in
      match reason with
      | None -> emit site 0 0 0 0
      | Some (tag, x, y, z) ->
        emit site tag x y z;
        if tag = P.s_copy || tag = P.s_phi || tag = P.s_bind then go (At_var x) (depth + 1)
        else if tag = P.s_load then go (At_mem { node = y; cont = z }) (depth + 1)
        else if tag = P.m_store then go (At_var x) (depth + 1)
        else if tag = P.m_edge then begin
          match site with
          | At_mem { cont; _ } -> go (At_mem { node = x; cont }) (depth + 1)
          | _ -> ()
        end
        (* s_addr, s_gep, m_fork: base events *)
    end
  in
  go (At_var v) 0;
  ignore d;
  List.rev !steps

let why_pt ?(max_depth = 64) d v o =
  match d.Driver.prov with
  | None -> None
  | Some r ->
    if not (Iset.mem o (Sparse.pt_top d.Driver.sparse v)) then None
    else
      timed "prov.explain_cost_us" (fun () ->
          let chain = walk_sparse r d ~max_depth v o in
          Obs.Metrics.observe (Obs.Metrics.histogram "prov.chain_len") (List.length chain);
          Some chain)

let why_pt_andersen ?(max_depth = 64) d v o =
  let ast = d.Driver.ast in
  match A.prov_recorder ast with
  | None -> None
  | Some _ ->
    if not (Iset.mem o (A.pt_var ast v)) then None
    else
      timed "prov.explain_cost_us" (fun () ->
          let steps = ref [] in
          let visited = Hashtbl.create 16 in
          let rec go node depth =
            if depth < max_depth && not (Hashtbl.mem visited node) then begin
              Hashtbl.replace visited node ();
              match A.prov_find ast ~node ~obj:o with
              | None -> steps := { site = At_avar node; obj = o; tag = 0; x = 0; y = 0; z = 0 } :: !steps
              | Some (tag, x, y, z) ->
                steps := { site = At_avar node; obj = o; tag; x; y; z } :: !steps;
                if tag = P.a_copy || tag = P.a_merge then go x (depth + 1)
            end
          in
          go (A.prov_node_of_var ast v) 0;
          let chain = List.rev !steps in
          Obs.Metrics.observe (Obs.Metrics.histogram "prov.chain_len") (List.length chain);
          Some chain)

(* Differential replay: the chain must re-justify the exact fact it
   explains against the final solution and the program text. *)
let replay d chain =
  let prog = d.Driver.prog in
  let sparse = d.Driver.sparse in
  let ast = d.Driver.ast in
  let holds st =
    match st.site with
    | At_var v -> Iset.mem st.obj (Sparse.pt_top sparse v)
    | At_mem { node; cont } -> Iset.mem st.obj (Sparse.pto_get sparse node cont)
    | At_avar n -> (
      match (A.prov_var_of_node ast n, A.prov_obj_of_node ast n) with
      | Some v, _ -> Iset.mem st.obj (A.pt_var ast v)
      | _, Some o -> Iset.mem st.obj (A.pt_obj ast o)
      | _ -> false)
  in
  let base_ok st =
    (* recorded base events must match the program text *)
    if st.tag = P.s_addr || st.tag = P.a_base then
      match Prog.stmt_at prog st.x with
      | Stmt.Addr_of { obj; _ } -> obj = st.obj
      | _ -> false
    else if st.tag = P.m_store then
      match Prog.stmt_at prog st.y with Stmt.Store _ -> true | _ -> false
    else if st.tag = P.s_load then
      match Prog.stmt_at prog st.x with Stmt.Load _ -> true | _ -> false
    else if st.tag = P.m_fork then
      match Prog.stmt_at prog st.x with Stmt.Fork _ -> true | _ -> false
    else true
  in
  chain <> [] && List.for_all (fun st -> holds st && base_ok st) chain

(* ------------------------------------------------------------------------ *)
(* MHP justifications                                                       *)
(* ------------------------------------------------------------------------ *)

type mhp_reason =
  | Same_thread of int
  | Ancestor_descendant of { anc : int; desc : int }
  | Sibling of { t1 : int; t2 : int }

type mhp_just = {
  j_gids : int * int;
  j_insts : int * int;
  j_threads : int * int;
  j_reason : mhp_reason;
  j_chains : (int * int option) list * (int * int option) list;
}

let why_mhp d g1 g2 =
  timed "prov.explain_cost_us" (fun () ->
      match Mta.Mhp.witness_pair d.Driver.mhp g1 g2 with
      | None -> None
      | Some (i, j) ->
        let tm = d.Driver.tm in
        let ti = (Mta.Threads.inst tm i).Mta.Threads.i_thread in
        let tj = (Mta.Threads.inst tm j).Mta.Threads.i_thread in
        let reason =
          if ti = tj then Same_thread ti
          else if Iset.mem tj (Mta.Threads.descendants tm ti) then
            Ancestor_descendant { anc = ti; desc = tj }
          else if Iset.mem ti (Mta.Threads.descendants tm tj) then
            Ancestor_descendant { anc = tj; desc = ti }
          else Sibling { t1 = ti; t2 = tj }
        in
        Some
          {
            j_gids = (g1, g2);
            j_insts = (i, j);
            j_threads = (ti, tj);
            j_reason = reason;
            j_chains = (Mta.Threads.fork_chain tm ti, Mta.Threads.fork_chain tm tj);
          })

(* ------------------------------------------------------------------------ *)
(* [THREAD-VF] edge verdicts and store updates                              *)
(* ------------------------------------------------------------------------ *)

type edge_verdict =
  | Kept of { unprotected : bool; winsts : (int * int) option }
  | Filtered_lock of {
      insts : int * int;
      spans : int * int;
      store_not_tail : bool;
      load_not_head : bool;
    }
  | Skipped_mhp
  | Unrecorded

let why_edge d ~store ~obj ~access =
  match d.Driver.prov with
  | None -> Unrecorded
  | Some r ->
    timed "prov.explain_cost_us" (fun () ->
        match P.find r ~space:P.sp_pair ~k1:store ~k2:access ~obj with
        | None -> Unrecorded
        | Some (tag, x, y, z) ->
          if tag = P.p_kept then
            Kept { unprotected = x = 1; winsts = (if y >= 0 then Some (y, z) else None) }
          else if tag = P.p_filtered_lock then begin
            let sp, sp', store_not_tail, load_not_head = P.unpack_spans z in
            Filtered_lock { insts = (x, y); spans = (sp, sp'); store_not_tail; load_not_head }
          end
          else Skipped_mhp)

let store_update d gid =
  match d.Driver.prov with
  | None -> None
  | Some r -> (
    match P.find r ~space:P.sp_store ~k1:gid ~k2:0 ~obj:0 with
    | Some (tag, x, _, _) when tag = P.u_strong -> Some (`Strong x)
    | Some (tag, _, _, _) when tag = P.u_weak -> Some `Weak
    | _ -> None)

(* ------------------------------------------------------------------------ *)
(* Race witnesses                                                           *)
(* ------------------------------------------------------------------------ *)

type witness = {
  w_obj : int;
  w_store : int;
  w_access : int;
  w_both_writes : bool;
  w_insts : int * int;
  w_ctxs : int list * int list;
  w_threads : int * int;
  w_mhp : mhp_just;
  w_locks : int list * int list;
  w_path : step list;
}

let witness d (r : Races.race) =
  match d.Driver.prov with
  | None -> None
  | Some _ -> (
    match why_mhp d r.Races.store_gid r.Races.access_gid with
    | None -> None
    | Some just ->
      let i, j = just.j_insts in
      let tm = d.Driver.tm in
      let ctx iid =
        Mta.Ctx.to_list (Mta.Threads.ctx_store tm) (Mta.Threads.inst tm iid).Mta.Threads.i_ctx
      in
      let path =
        match Prog.stmt_at d.Driver.prog r.Races.store_gid with
        | Stmt.Store { dst; _ } -> Option.value ~default:[] (why_pt d dst r.Races.obj)
        | _ -> []
      in
      Obs.Metrics.observe (Obs.Metrics.histogram "prov.witness_path_len") (List.length path);
      Some
        {
          w_obj = r.Races.obj;
          w_store = r.Races.store_gid;
          w_access = r.Races.access_gid;
          w_both_writes = r.Races.both_writes;
          w_insts = just.j_insts;
          w_ctxs = (ctx i, ctx j);
          w_threads = just.j_threads;
          w_mhp = just;
          w_locks = (Mta.Locks.held_locks d.Driver.locks i, Mta.Locks.held_locks d.Driver.locks j);
          w_path = path;
        })

(* ------------------------------------------------------------------------ *)
(* Rendering                                                                *)
(* ------------------------------------------------------------------------ *)

let stmt_str d gid =
  Format.asprintf "#%d: %a" gid (Prog.pp_stmt d.Driver.prog) (Prog.stmt_at d.Driver.prog gid)

let node_desc d n =
  match Svfg.node d.Driver.svfg n with
  | Svfg.Stmt_node g -> stmt_str d g
  | Svfg.Formal_in (f, o) ->
    Printf.sprintf "formal-in(%s, %s)" (Prog.func d.Driver.prog f).Func.fname
      (Prog.obj_name d.Driver.prog o)
  | Svfg.Formal_out (f, o) ->
    Printf.sprintf "formal-out(%s, %s)" (Prog.func d.Driver.prog f).Func.fname
      (Prog.obj_name d.Driver.prog o)
  | Svfg.Call_chi (g, o) ->
    Printf.sprintf "call-chi(gid %d, %s)" g (Prog.obj_name d.Driver.prog o)

let site_str d = function
  | At_var v -> Printf.sprintf "pt(%s)" (Prog.var_name d.Driver.prog v)
  | At_mem { node; cont } ->
    Printf.sprintf "%s at [%s]" (Prog.obj_name d.Driver.prog cont) (node_desc d node)
  | At_avar n -> (
    match (A.prov_var_of_node d.Driver.ast n, A.prov_obj_of_node d.Driver.ast n) with
    | Some v, _ -> Printf.sprintf "pt(%s)" (Prog.var_name d.Driver.prog v)
    | _, Some o -> Printf.sprintf "cell(%s)" (Prog.obj_name d.Driver.prog o)
    | _ -> Printf.sprintf "node %d" n)

let edge_kind_name k =
  if k = Svfg.k_thread_vf then "thread-vf"
  else if k = Svfg.k_fork_bypass then "fork-bypass"
  else if k = Svfg.k_join then "join"
  else "oblivious"

let var d v = Prog.var_name d.Driver.prog v
let obj d o = Prog.obj_name d.Driver.prog o

(* One clause per reason tag; [site] is needed for the SVFG-edge kinds. *)
let reason_str d st =
  let t = st.tag in
  if t = 0 then "(unrecorded)"
  else if t = P.s_addr || t = P.a_base then Printf.sprintf "address-of at %s" (stmt_str d st.x)
  else if t = P.s_copy then Printf.sprintf "copied from %s at %s" (var d st.x) (stmt_str d st.y)
  else if t = P.s_phi then Printf.sprintf "phi from %s at %s" (var d st.x) (stmt_str d st.y)
  else if t = P.s_gep then Printf.sprintf "field of %s at %s" (obj d st.x) (stmt_str d st.y)
  else if t = P.s_load then
    Printf.sprintf "loaded at %s out of %s defined at [%s]" (stmt_str d st.x) (obj d st.z)
      (node_desc d st.y)
  else if t = P.s_bind then
    Printf.sprintf "bound from %s at call %s" (var d st.x) (stmt_str d st.y)
  else if t = P.m_store then
    Printf.sprintf "stored from %s at %s" (var d st.x) (stmt_str d st.y)
  else if t = P.m_edge then begin
    let kind =
      match st.site with
      | At_mem { node; cont } ->
        edge_kind_name (Svfg.edge_kind d.Driver.svfg ~src:st.x ~obj:cont ~dst:node)
      | _ -> "oblivious"
    in
    let upd =
      (* a weak update passing a value through a store is worth naming *)
      match st.site with
      | At_mem { node; _ } -> (
        match Svfg.node d.Driver.svfg node with
        | Svfg.Stmt_node g -> (
          match (Prog.stmt_at d.Driver.prog g, store_update d g) with
          | Stmt.Store _, Some `Weak -> "; weak update"
          | Stmt.Store _, Some (`Strong k) ->
            Printf.sprintf "; strong update (kills %s)" (obj d k)
          | _ -> "")
        | _ -> "")
      | _ -> ""
    in
    Printf.sprintf "reached over %s SVFG edge from [%s]%s" kind (node_desc d st.x) upd
  end
  else if t = P.m_fork then Printf.sprintf "fork-site theta at %s" (stmt_str d st.x)
  else if t = P.a_copy then Printf.sprintf "flowed over inclusion edge from %s" (site_str d (At_avar st.x))
  else if t = P.a_gep then Printf.sprintf "field of %s" (obj d st.x)
  else if t = P.a_fork then Printf.sprintf "thread object bound by fork %d" st.x
  else if t = P.a_merge then
    Printf.sprintf "cycle collapse absorbed %s" (site_str d (At_avar st.x))
  else Printf.sprintf "reason tag %d" t

let tag_name t =
  if t = 0 then "unrecorded"
  else if t = P.s_addr then "addr-of"
  else if t = P.s_copy then "copy"
  else if t = P.s_phi then "phi"
  else if t = P.s_gep then "gep"
  else if t = P.s_load then "load"
  else if t = P.s_bind then "bind"
  else if t = P.m_store then "store"
  else if t = P.m_edge then "svfg-edge"
  else if t = P.m_fork then "fork-theta"
  else if t = P.a_base then "addr-of"
  else if t = P.a_copy then "inclusion-edge"
  else if t = P.a_gep then "gep"
  else if t = P.a_fork then "fork"
  else if t = P.a_merge then "cycle-merge"
  else "tag-" ^ string_of_int t

let pp_chain d ppf chain =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i st ->
      Format.fprintf ppf "%s%s ∋ %s — %s@,"
        (if i = 0 then "" else "  <- ")
        (site_str d st.site) (obj d st.obj) (reason_str d st))
    chain;
  Format.fprintf ppf "@]"

let step_json d st =
  let site =
    match st.site with
    | At_var v -> [ ("site", J.String "var"); ("var", J.String (var d v)) ]
    | At_mem { node; cont } ->
      [
        ("site", J.String "mem");
        ("node", J.Int node);
        ("node_desc", J.String (node_desc d node));
        ("container", J.String (obj d cont));
      ]
    | At_avar n -> [ ("site", J.String "andersen"); ("node", J.Int n) ]
  in
  J.Obj
    (site
    @ [
        ("obj", J.String (obj d st.obj));
        ("reason", J.String (tag_name st.tag));
        ("detail", J.String (reason_str d st));
        ("x", J.Int st.x);
        ("y", J.Int st.y);
        ("z", J.Int st.z);
      ])

let chain_json d chain = J.List (List.map (step_json d) chain)

let thread_str d tid = Mta.Threads.thread_name d.Driver.tm tid

let chain_link_json d (tid, fg) =
  J.Obj
    [
      ("thread", J.String (thread_str d tid));
      ("fork_gid", match fg with Some g -> J.Int g | None -> J.Null);
    ]

let pp_fork_chain d ppf chain =
  List.iteri
    (fun i (tid, fg) ->
      if i > 0 then Format.fprintf ppf " -> ";
      match fg with
      | Some g -> Format.fprintf ppf "%s (forked at #%d)" (thread_str d tid) g
      | None -> Format.fprintf ppf "%s" (thread_str d tid))
    chain

let pp_mhp d ppf j =
  let g1, g2 = j.j_gids in
  let t1, t2 = j.j_threads in
  Format.fprintf ppf "@[<v>#%d || #%d may happen in parallel:@," g1 g2;
  (match j.j_reason with
  | Same_thread t ->
    Format.fprintf ppf "  multi-forked thread %s runs both instances@," (thread_str d t)
  | Ancestor_descendant { anc; desc } ->
    Format.fprintf ppf "  %s is an ancestor of %s and does not join it first@,"
      (thread_str d anc) (thread_str d desc)
  | Sibling { t1; t2 } ->
    Format.fprintf ppf "  %s and %s are unordered siblings@," (thread_str d t1)
      (thread_str d t2));
  Format.fprintf ppf "  fork chain of %s: " (thread_str d t1);
  pp_fork_chain d ppf (fst j.j_chains);
  Format.fprintf ppf "@,  fork chain of %s: " (thread_str d t2);
  pp_fork_chain d ppf (snd j.j_chains);
  Format.fprintf ppf "@]"

let mhp_json d j =
  let reason =
    match j.j_reason with
    | Same_thread t ->
      J.Obj [ ("kind", J.String "same-thread-multi"); ("thread", J.String (thread_str d t)) ]
    | Ancestor_descendant { anc; desc } ->
      J.Obj
        [
          ("kind", J.String "ancestor-descendant");
          ("ancestor", J.String (thread_str d anc));
          ("descendant", J.String (thread_str d desc));
        ]
    | Sibling { t1; t2 } ->
      J.Obj
        [
          ("kind", J.String "sibling");
          ("t1", J.String (thread_str d t1));
          ("t2", J.String (thread_str d t2));
        ]
  in
  J.Obj
    [
      ("gids", J.List [ J.Int (fst j.j_gids); J.Int (snd j.j_gids) ]);
      ("insts", J.List [ J.Int (fst j.j_insts); J.Int (snd j.j_insts) ]);
      ( "threads",
        J.List
          [ J.String (thread_str d (fst j.j_threads)); J.String (thread_str d (snd j.j_threads)) ] );
      ("reason", reason);
      ("fork_chain_1", J.List (List.map (chain_link_json d) (fst j.j_chains)));
      ("fork_chain_2", J.List (List.map (chain_link_json d) (snd j.j_chains)));
    ]

let span_str d lk sid =
  Printf.sprintf "span %d (lock %s)" sid (obj d (Mta.Locks.span_lock lk sid))

let pp_edge_verdict d ppf v =
  match v with
  | Kept { unprotected; winsts } ->
    Format.fprintf ppf "kept (%s)" (if unprotected then "unprotected" else "lock-protected");
    (match winsts with
    | Some (i, j) -> Format.fprintf ppf " — witness instance pair (%d, %d)" i j
    | None -> ())
  | Filtered_lock { insts = i, j; spans = sp, sp'; store_not_tail; load_not_head } ->
    Format.fprintf ppf
      "filtered by the lock analysis: instance pair (%d, %d) under %s / %s — %s%s%s" i j
      (span_str d d.Driver.locks sp) (span_str d d.Driver.locks sp')
      (if store_not_tail then "the store is not the span tail" else "")
      (if store_not_tail && load_not_head then " and " else "")
      (if load_not_head then "the access is not the span head" else "")
  | Skipped_mhp -> Format.fprintf ppf "no edge: the statements never happen in parallel"
  | Unrecorded -> Format.fprintf ppf "no verdict recorded (provenance off or not a candidate)"

let edge_verdict_json d v =
  match v with
  | Kept { unprotected; winsts } ->
    J.Obj
      ([ ("verdict", J.String "kept"); ("unprotected", J.Bool unprotected) ]
      @
      match winsts with
      | Some (i, j) -> [ ("witness_insts", J.List [ J.Int i; J.Int j ]) ]
      | None -> [])
  | Filtered_lock { insts = i, j; spans = sp, sp'; store_not_tail; load_not_head } ->
    J.Obj
      [
        ("verdict", J.String "filtered-lock");
        ("insts", J.List [ J.Int i; J.Int j ]);
        ("spans", J.List [ J.Int sp; J.Int sp' ]);
        ("span_locks",
         J.List
           [
             J.String (obj d (Mta.Locks.span_lock d.Driver.locks sp));
             J.String (obj d (Mta.Locks.span_lock d.Driver.locks sp'));
           ]);
        ("store_not_tail", J.Bool store_not_tail);
        ("load_not_head", J.Bool load_not_head);
      ]
  | Skipped_mhp -> J.Obj [ ("verdict", J.String "skipped-mhp") ]
  | Unrecorded -> J.Obj [ ("verdict", J.String "unrecorded") ]

let pp_witness d ppf w =
  let ctx_str c =
    match c with
    | [] -> "<entry>"
    | l -> String.concat " > " (List.map (fun g -> "#" ^ string_of_int g) l)
  in
  let locks_str = function
    | [] -> "none"
    | l -> String.concat ", " (List.map (obj d) l)
  in
  Format.fprintf ppf
    "@[<v>witness for race on %s:@,\
    \  write  %s@,\
    \    thread %s, ctx %s, holding {%s}@,\
    \  %s %s@,\
    \    thread %s, ctx %s, holding {%s}@,\
    \  %a@,\
    \  value flow to %s:@,  %a@]"
    (obj d w.w_obj) (stmt_str d w.w_store)
    (thread_str d (fst w.w_threads))
    (ctx_str (fst w.w_ctxs))
    (locks_str (fst w.w_locks))
    (if w.w_both_writes then "write " else "read  ")
    (stmt_str d w.w_access)
    (thread_str d (snd w.w_threads))
    (ctx_str (snd w.w_ctxs))
    (locks_str (snd w.w_locks))
    (pp_mhp d) w.w_mhp (obj d w.w_obj) (pp_chain d) w.w_path

let witness_json d w =
  J.Obj
    [
      ("obj", J.String (obj d w.w_obj));
      ("store_gid", J.Int w.w_store);
      ("access_gid", J.Int w.w_access);
      ("both_writes", J.Bool w.w_both_writes);
      ("insts", J.List [ J.Int (fst w.w_insts); J.Int (snd w.w_insts) ]);
      ( "contexts",
        J.List
          [
            J.List (List.map (fun g -> J.Int g) (fst w.w_ctxs));
            J.List (List.map (fun g -> J.Int g) (snd w.w_ctxs));
          ] );
      ( "threads",
        J.List
          [ J.String (thread_str d (fst w.w_threads)); J.String (thread_str d (snd w.w_threads)) ]
      );
      ("mhp", mhp_json d w.w_mhp);
      ( "locks",
        J.List
          [
            J.List (List.map (fun o -> J.String (obj d o)) (fst w.w_locks));
            J.List (List.map (fun o -> J.String (obj d o)) (snd w.w_locks));
          ] );
      ("value_flow", chain_json d w.w_path);
    ]
