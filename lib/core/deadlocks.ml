open Fsam_ir
module Mta = Fsam_mta

type deadlock = { lock_a : int; lock_b : int; site_ab : int; site_ba : int }

(* lock-order edges: (held lock, acquired lock, acquiring instance) *)
let lock_order_edges d =
  let lk = d.Driver.locks in
  let tm = d.Driver.tm in
  let edges = ref [] in
  for sid = 0 to Mta.Locks.n_spans lk - 1 do
    let held = Mta.Locks.span_lock lk sid in
    List.iter
      (fun iid ->
        let gid = (Mta.Threads.inst tm iid).Mta.Threads.i_gid in
        match Prog.stmt_at d.Driver.prog gid with
        | Stmt.Lock v -> (
          match Fsam_dsa.Iset.elements (Sparse.pt_top d.Driver.sparse v) with
          | [ acquired ] when acquired <> held -> edges := (held, acquired, iid) :: !edges
          | _ -> ())
        | _ -> ())
      (Mta.Locks.span_members lk sid)
  done;
  !edges

let detect ?(jobs = 1) d =
  let edges = Array.of_list (lock_order_edges d) in
  let mhp = d.Driver.mhp in
  let tm = d.Driver.tm in
  let chunks =
    (* every edge scans the whole edge array for its reverse pair *)
    Fsam_par.run_chunks ~label:"deadlocks"
      ~weight:(fun _ -> Array.length edges)
      ~jobs ~n:(Array.length edges)
      (fun ~lo ~hi ->
        let acc = ref [] in
        for x = lo to hi - 1 do
          let a, b, i = edges.(x) in
          Array.iter
            (fun (a', b', j) ->
              if a' = b && b' = a && a < a' && Mta.Mhp.mhp_inst mhp i j then
                acc :=
                  {
                    lock_a = a;
                    lock_b = b;
                    site_ab = (Mta.Threads.inst tm i).Mta.Threads.i_gid;
                    site_ba = (Mta.Threads.inst tm j).Mta.Threads.i_gid;
                  }
                  :: !acc)
            edges
        done;
        !acc)
  in
  List.sort_uniq compare (List.concat chunks)

let pp_deadlock d ppf dl =
  let prog = d.Driver.prog in
  Format.fprintf ppf "%s -> %s (at gid %d) vs %s -> %s (at gid %d)"
    (Prog.obj_name prog dl.lock_a) (Prog.obj_name prog dl.lock_b) dl.site_ab
    (Prog.obj_name prog dl.lock_b) (Prog.obj_name prog dl.lock_a) dl.site_ba
