(** A full introspection report of one FSAM run: per-phase statistics in the
    order of the paper's Figure 2 pipeline, plus client summaries. Exposed
    as [fsam report FILE] in the CLI. *)

type t = {
  (* program *)
  r_stmts : int;
  r_funcs : int;
  r_vars : int;
  r_objs : int;
  (* pre-analysis *)
  r_andersen_iters : int;
  r_andersen_facts : int;
  r_reachable_funcs : int;
  (* thread model *)
  r_threads : int;
  r_multi_forked : int;
  r_instances : int;
  r_handled_join_insts : int;
  (* interference analyses *)
  r_mhp_iters : int;
  r_mhp_facts : int;
  r_lock_spans : int;
  (* def-use graph *)
  r_svfg_nodes : int;
  r_svfg_edges : int;
  r_thread_aware_edges : int;
  (* solve *)
  r_solver_iters : int;
  r_pts_facts : int;
  r_strong_updates : int;
  r_weak_updates : int;
  (* clients *)
  r_races : int;
  r_deadlocks : int;
  r_instrumented : int;
  r_accesses : int;
  (* timing *)
  r_times : Driver.phase_times;
}

val build : Driver.t -> t
val pp : Format.formatter -> t -> unit

val to_json : t -> Fsam_obs.Json.t
(** Machine-readable form of the report, grouped like [pp]; embedded in the
    [Telemetry] export. *)
