open Fsam_ir
module A = Fsam_andersen.Solver
module Modref = Fsam_andersen.Modref
module Mta = Fsam_mta
module Svfg = Fsam_memssa.Svfg
module Obs = Fsam_obs

type config = {
  svfg : Svfg.config;
  max_ctx_depth : int;
  nonsparse_budget : float;
  scheduler : Sparse.scheduler;
  jobs : int;
  provenance : bool;
  profile : bool;
}

let default_config =
  {
    svfg = Svfg.default_config;
    max_ctx_depth = 24;
    nonsparse_budget = 7200.;
    scheduler = Sparse.Priority;
    jobs = 1;
    provenance = false;
    profile = false;
  }

let no_interleaving =
  { default_config with svfg = { Svfg.default_config with use_interleaving = false } }

let no_value_flow =
  { default_config with svfg = { Svfg.default_config with use_value_flow = false } }

let no_lock = { default_config with svfg = { Svfg.default_config with use_lock = false } }

type phase_times = {
  t_pre : float;
  t_thread_model : float;
  t_interleaving : float;
  t_lock : float;
  t_svfg : float;
  t_solve : float;
}

(* Per-phase warm-start hooks (the fsam serve engine's incremental edit
   path). Each hook may produce the phase's result from the previous
   generation — [None] falls back to the normal cold computation. Hooks run
   inside the phase spans, so the phase walls reflect whatever path was
   taken. modref, pcg and the singleton analysis are always recomputed:
   they are cheap, and recomputing them keeps the reuse guards (which
   compare old-vs-new summaries) honest. *)
type warm_hooks = {
  wh_andersen : Prog.t -> A.t option;
  wh_thread_model : Prog.t -> A.t -> (Mta.Icfg.t * Mta.Threads.t) option;
  wh_mhp : Mta.Threads.t -> Mta.Mhp.t option;
  wh_locks : Prog.t -> A.t -> Mta.Threads.t -> Mta.Locks.t option;
  wh_svfg :
    Prog.t ->
    A.t ->
    Modref.t ->
    Mta.Icfg.t ->
    Mta.Threads.t ->
    Mta.Mhp.t ->
    Mta.Locks.t ->
    Mta.Pcg.t ->
    Svfg.t option;
}

type t = {
  prog : Prog.t;
  ast : A.t;
  modref : Modref.t;
  icfg : Mta.Icfg.t;
  tm : Mta.Threads.t;
  mhp : Mta.Mhp.t;
  locks : Mta.Locks.t;
  pcg : Mta.Pcg.t;
  svfg : Svfg.t;
  sparse : Sparse.t;
  times : phase_times;
  prov : Fsam_prov.t option;
}

(* Each [run] owns the process-global observability buffers: spans and
   metrics are reset at entry, so after [run] returns they describe exactly
   that pipeline execution (exported by [Telemetry]). *)
let run_with_solve ?(config = default_config) ?warm ~solve prog =
  Validate.check_exn prog;
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.Profile.set_enabled config.profile;
  Obs.Profile.reset ();
  let prov = if config.provenance then Some (Fsam_prov.create ()) else None in
  let try_warm get compute =
    match warm with
    | None -> compute ()
    | Some h -> ( match get h with Some v -> v | None -> compute ())
  in
  Obs.Span.with_ ~name:"fsam.run" (fun () ->
      let (ast, modref), sp_pre =
        Obs.Span.with_timed ~name:"phase.pre" (fun () ->
            let ast = try_warm (fun h -> h.wh_andersen prog) (fun () -> A.run ?prov prog) in
            let modref =
              Obs.Span.with_ ~name:"modref.compute" (fun () -> Modref.compute prog ast)
            in
            (ast, modref))
      in
      let (icfg, tm), sp_threads =
        Obs.Span.with_timed ~name:"phase.threads" (fun () ->
            try_warm
              (fun h -> h.wh_thread_model prog ast)
              (fun () ->
                let icfg =
                  Obs.Span.with_ ~name:"icfg.build" (fun () -> Mta.Icfg.build prog ast)
                in
                let tm =
                  Obs.Span.with_ ~name:"threads.build" (fun () ->
                      Mta.Threads.build ~max_ctx_depth:config.max_ctx_depth prog ast icfg)
                in
                (icfg, tm)))
      in
      let mhp, sp_mhp =
        Obs.Span.with_timed ~name:"phase.mhp" (fun () ->
            try_warm (fun h -> h.wh_mhp tm) (fun () -> Mta.Mhp.compute ~jobs:config.jobs tm))
      in
      let locks, sp_lock =
        Obs.Span.with_timed ~name:"phase.locks" (fun () ->
            try_warm
              (fun h -> h.wh_locks prog ast tm)
              (fun () -> Mta.Locks.compute prog ast tm))
      in
      let pcg = Obs.Span.with_ ~name:"pcg.compute" (fun () -> Mta.Pcg.compute tm icfg) in
      let svfg, sp_svfg =
        Obs.Span.with_timed ~name:"phase.svfg" (fun () ->
            try_warm
              (fun h -> h.wh_svfg prog ast modref icfg tm mhp locks pcg)
              (fun () ->
                Svfg.build ~config:config.svfg ~jobs:config.jobs ?prov prog ast modref icfg tm
                  mhp locks pcg))
      in
      let sparse, sp_solve =
        Obs.Span.with_timed ~name:"phase.solve" (fun () ->
            let singleton =
              Obs.Span.with_ ~name:"singletons.compute" (fun () ->
                  Singletons.compute prog ast tm icfg)
            in
            solve ~prog ~ast ~svfg ~singleton ~prov ~scheduler:config.scheduler)
      in
      (match prov with
      | Some r -> Obs.Metrics.(set (gauge "prov.records") (Fsam_prov.n_records r))
      | None -> ());
      {
        prog;
        ast;
        modref;
        icfg;
        tm;
        mhp;
        locks;
        pcg;
        svfg;
        sparse;
        times =
          {
            t_pre = sp_pre.Obs.Span.dur_s;
            t_thread_model = sp_threads.Obs.Span.dur_s;
            t_interleaving = sp_mhp.Obs.Span.dur_s;
            t_lock = sp_lock.Obs.Span.dur_s;
            t_svfg = sp_svfg.Obs.Span.dur_s;
            t_solve = sp_solve.Obs.Span.dur_s;
          };
        prov;
      })

let run ?config prog =
  run_with_solve ?config
    ~solve:(fun ~prog ~ast ~svfg ~singleton ~prov ~scheduler ->
      Sparse.solve ~scheduler ?prov prog ast svfg ~singleton)
    prog

let run_nonsparse ?(config = default_config) prog =
  Validate.check_exn prog;
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  let outcome, root =
    Obs.Span.with_timed ~name:"nonsparse.run" (fun () ->
        let t0 = Sys.time () in
        let (ast, icfg, pcg, singleton), _ =
          Obs.Span.with_timed ~name:"phase.pre" (fun () ->
              let ast = A.run prog in
              let icfg = Obs.Span.with_ ~name:"icfg.build" (fun () -> Mta.Icfg.build prog ast) in
              let tm =
                Obs.Span.with_ ~name:"threads.build" (fun () ->
                    Mta.Threads.build ~max_ctx_depth:config.max_ctx_depth prog ast icfg)
              in
              let pcg = Obs.Span.with_ ~name:"pcg.compute" (fun () -> Mta.Pcg.compute tm icfg) in
              let singleton =
                Obs.Span.with_ ~name:"singletons.compute" (fun () ->
                    Singletons.compute prog ast tm icfg)
              in
              (ast, icfg, pcg, singleton))
        in
        (* the OOT budget stays CPU-time based, like Nonsparse.solve itself *)
        let remaining = config.nonsparse_budget -. (Sys.time () -. t0) in
        if remaining <= 0. then
          (* don't silently hand the solver a token 0.1 s budget *)
          Format.eprintf
            "warning: nonsparse pre-phases alone consumed the %.0f s budget; the \
             solver will time out immediately — raise --nonsparse-budget@."
            config.nonsparse_budget;
        Obs.Span.with_ ~name:"nonsparse.solve" (fun () ->
            Nonsparse.solve ~budget_seconds:(max 0.1 remaining) prog ast icfg pcg ~singleton))
  in
  (outcome, root.Obs.Span.dur_s)

let pt t v = Sparse.pt_top t.sparse v

let pt_names t v =
  List.sort compare (List.map (Prog.obj_name t.prog) (Fsam_dsa.Iset.elements (pt t v)))

let alias t a b = not (Fsam_dsa.Iset.disjoint (pt t a) (pt t b))

let total_time t =
  t.times.t_pre +. t.times.t_thread_model +. t.times.t_interleaving +. t.times.t_lock
  +. t.times.t_svfg +. t.times.t_solve

let memory_entries t = Sparse.pts_entries t.sparse

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>FSAM summary:@,\
    \  %a@,\
    \  %a@,\
    \  %a@,\
    \  %a@,\
     \  phases: pre %.3fs, threads %.3fs, mhp %.3fs, locks %.3fs, svfg %.3fs, solve %.3fs@]"
    A.pp_stats t.ast Mta.Threads.pp_stats t.tm Svfg.pp_stats t.svfg Sparse.pp_stats t.sparse
    t.times.t_pre t.times.t_thread_model t.times.t_interleaving t.times.t_lock t.times.t_svfg
    t.times.t_solve
