open Fsam_ir

(** The sparse value-flow (def-use) graph over address-taken objects — the
    core representation of the sparse analysis (paper §2.2, §3.2, §3.3).

    {b Thread-oblivious edges} (paper §3.2) come from an interprocedural
    memory-SSA construction driven by the pre-analysis: loads and stores are
    annotated with the objects they may access (mu/chi); call and fork sites
    carry chi nodes for their callees' mod sets ({e weak} at forks, which
    yields the fork-bypass edges of Step 2); handled join sites carry chi
    nodes fed by the spawnee's formal-out defs (the join edges of Step 3);
    per-object def-use chains are then derived with a sparse per-object
    reaching-definitions pass over each relevant function (in the spirit of
    the sparse evaluation graphs the paper traces this idea to).

    {b Thread-aware edges} (paper §3.3, rule [THREAD-VF]) connect MHP
    store-load and store-store statement pairs with a common pre-analysis
    points-to target, filtered by the lock analysis' non-interference pairs
    (Definitions 4–6). The [config] selects the paper's ablations:
    No-Interleaving (PCG instead of the interleaving analysis),
    No-Value-Flow (common-target requirement dropped), No-Lock (filter
    disabled).

    [THREAD-VF] pair discovery is pure over the thread-oblivious snapshot
    and fans out per object across domains when [build ~jobs] exceeds 1;
    the per-chunk results are applied serially in chunk order, so the edge
    set, the racy-store sets and every counter are identical for all [jobs]
    values. *)

type node =
  | Stmt_node of int  (** statement gid: loads, stores, fork-handle chis *)
  | Formal_in of int * int  (** (fid, obj): memory state at function entry *)
  | Formal_out of int * int  (** (fid, obj): memory state at function exit *)
  | Call_chi of int * int  (** (callsite gid, obj): weak def at a call/fork *)

type config = {
  thread_aware : bool;  (** add [THREAD-VF] edges at all *)
  use_interleaving : bool;  (** false = the paper's No-Interleaving (PCG) *)
  use_value_flow : bool;  (** false = the paper's No-Value-Flow *)
  use_lock : bool;  (** false = the paper's No-Lock *)
}

val default_config : config

type t

val build :
  ?config:config ->
  ?jobs:int ->
  ?prov:Fsam_prov.t ->
  Prog.t ->
  Fsam_andersen.Solver.t ->
  Fsam_andersen.Modref.t ->
  Fsam_mta.Icfg.t ->
  Fsam_mta.Threads.t ->
  Fsam_mta.Mhp.t ->
  Fsam_mta.Locks.t ->
  Fsam_mta.Pcg.t ->
  t

val n_nodes : t -> int
val node : t -> int -> node
val node_id : t -> node -> int option
val o_preds : t -> int -> (int * int) list
(** [(obj, def node)] pairs feeding a node. *)

val o_succs : t -> int -> (int * int) list
val n_edges : t -> int
val n_thread_aware_edges : t -> int

(** Objects for which the given store statement participates in an
    interfering (post-lock-filter) MHP pair; strong updates on these objects
    are suppressed — the interleaving may order the racing accesses either
    way, so a kill could erase a concurrent thread's later effect. *)
val racy_objs : t -> int -> Fsam_dsa.Iset.t
val prog : t -> Prog.t

val arena_occupancy : t -> int * int
(** [(live, tombstones)] cell counts summed over the arena-backed pred/succ
    edge indexes; [(0, 0)] before they are materialized. Observability
    only. *)

val digest : t -> string
(** Hex digest of the graph's canonical structural fingerprint (edge
    counts, sorted structural edge triples, racy-object sets). Keys are
    structural — gids, fids and object ids, never intern-order node
    indices — so an incrementally patched graph digests equal to a cold
    rebuild iff they denote the same graph. Used by the jobs-invariance
    tests and the serve differential mode. *)

val node_key : t -> int -> string
(** Stable textual key of a node's structure (gid / fid / object id, never
    the intern-order index) — the key the serve engine uses to compare and
    serialize per-node results across generations whose graphs interned
    nodes in different orders. *)

(* Incremental patching (fsam serve warm edits) --------------------------- *)

type patch_stats = {
  ps_dirty_fns : int;  (** functions whose oblivious dataflow was re-run *)
  ps_dirty_objs : int;  (** objects whose [THREAD-VF] pair space was re-run *)
  ps_removed : int;  (** oblivious edges retracted *)
  ps_added : int;  (** oblivious edges re-derived (including promotions) *)
}

val patch :
  t ->
  ?config:config ->
  ?jobs:int ->
  prog:Prog.t ->
  old_ast:Fsam_andersen.Solver.t ->
  ast:Fsam_andersen.Solver.t ->
  old_mr:Fsam_andersen.Modref.t ->
  mr:Fsam_andersen.Modref.t ->
  icfg:Fsam_mta.Icfg.t ->
  tm:Fsam_mta.Threads.t ->
  mhp:Fsam_mta.Mhp.t ->
  lk:Fsam_mta.Locks.t ->
  pcg:Fsam_mta.Pcg.t ->
  edited_fids:int list ->
  unit ->
  (t * patch_stats, string) result
(** Splice the previous generation's SVFG into the new generation's in
    place of a cold rebuild: retract the oblivious edges owned by dirty
    functions (edited, or with drifted points-to / mod-ref / join-row
    inputs), re-run the per-fn oblivious construction for those functions
    only, then re-run [THREAD-VF] discovery for exactly the objects whose
    oblivious rows or access lists changed. The input graph is not
    mutated; the result's structural digest is byte-identical to a cold
    [build] of the new program. Preconditions (established by the serve
    engine): identical statement gids and object tables across the
    generations and a reused thread model / MHP / lock analysis. [Error
    reason] when a detectable precondition fails — the caller falls back
    to a cold rebuild and counts the reason. *)

(* Provenance (populated only when [build ~prov] was given) --------------- *)

(** Edge kinds for {!edge_kind}: how a def-use edge came to exist. *)

val k_oblivious : int  (** thread-oblivious reaching-definition edge *)

val k_fork_bypass : int  (** paper §3.2 step 2: defs bypassing a fork *)

val k_join : int  (** paper §3.2 step 3: spawnee formal-out via a join *)

val k_thread_vf : int  (** paper §3.3 rule [THREAD-VF] *)

(** Kind of the given edge; {!k_oblivious} when unknown or when built
    without a recorder. The [THREAD-VF] pair verdicts themselves (kept /
    lock-filtered / no-MHP, space [Fsam_prov.sp_pair]) live in the recorder
    passed to [build]. *)
val edge_kind : t -> src:int -> obj:int -> dst:int -> int
val iter_nodes : t -> (int -> node -> unit) -> unit
val pp_stats : Format.formatter -> t -> unit
