open Fsam_dsa
open Fsam_ir
module A = Fsam_andersen.Solver
module Modref = Fsam_andersen.Modref
module Mta = Fsam_mta
module Obs = Fsam_obs

type node =
  | Stmt_node of int
  | Formal_in of int * int
  | Formal_out of int * int
  | Call_chi of int * int

type config = {
  thread_aware : bool;
  use_interleaving : bool;
  use_value_flow : bool;
  use_lock : bool;
}

let default_config =
  { thread_aware = true; use_interleaving = true; use_value_flow = true; use_lock = true }

(* Provenance edge kinds (recorded only when a recorder is attached). *)
let k_oblivious = 0
let k_fork_bypass = 1
let k_join = 2
let k_thread_vf = 3

type t = {
  mutable prog : Prog.t;
  nodes : node Vec.t;
  index : (node, int) Hashtbl.t;
  preds : (int * int) list Vec.t;
  succs : (int * int) list Vec.t;
  edge_set : (int * int * int, unit) Hashtbl.t; (* (src, obj, dst) *)
  mutable thread_edges : int;
  racy : (int, Iset.t) Hashtbl.t; (* store gid -> objects with interfering MHP pairs *)
  ekind : (int * int * int, int) Hashtbl.t; (* non-oblivious kinds, prov only *)
  mutable record_prov : Fsam_prov.t option;
  (* -- incremental-patch bookkeeping (see [patch]) -- *)
  owners : (int * int * int, int) Hashtbl.t;
      (* oblivious edge -> the function whose per-fn dataflow first derived
         it; only [Formal_out -> Formal_in] triples can have further adders
         (handled by the patcher's dirty closure) *)
  tvf : (int * int * int, unit) Hashtbl.t; (* edges added by [THREAD-VF] discovery *)
  mutable cur_owner : int; (* function being rebuilt by [build_oblivious], or -1 *)
  mutable log_adds : bool; (* patch mode: log every new edge *)
  mutable add_log : (int * int * int) list;
  (* persistent per-(object, gid) index of the thread-oblivious stmt-to-stmt
     def-use snapshot, in tombstoned arena rows so the patcher can splice it
     in place. pred rows are keyed (o, head gid) holding tail gids; succ
     rows keyed (o, tail gid) holding head gids. Built only when the
     thread-aware stage runs. *)
  mutable obl_pred : Arena.Dyn.t option;
  mutable obl_succ : Arena.Dyn.t option;
}

let n_nodes t = Vec.length t.nodes
let node t i = Vec.get t.nodes i
let node_id t n = Hashtbl.find_opt t.index n
let o_preds t i = Vec.get t.preds i
let o_succs t i = Vec.get t.succs i
let n_edges t = Hashtbl.length t.edge_set
let n_thread_aware_edges t = t.thread_edges
let prog t = t.prog
let iter_nodes t f = Vec.iteri (fun i n -> f i n) t.nodes

let intern t n =
  match Hashtbl.find_opt t.index n with
  | Some i -> i
  | None ->
    let i = Vec.push t.nodes n in
    ignore (Vec.push t.preds []);
    ignore (Vec.push t.succs []);
    Hashtbl.replace t.index n i;
    i

let add_edge ?(kind = 0) t src obj dst =
  let key = (src, obj, dst) in
  if not (Hashtbl.mem t.edge_set key) then begin
    Hashtbl.replace t.edge_set key ();
    (match t.record_prov with
    | Some _ -> if kind <> k_oblivious then Hashtbl.replace t.ekind key kind
    | None -> ());
    if t.cur_owner >= 0 then Hashtbl.replace t.owners key t.cur_owner;
    if kind = k_thread_vf then Hashtbl.replace t.tvf key ();
    if t.log_adds then t.add_log <- key :: t.add_log;
    Vec.set t.preds dst ((obj, src) :: Vec.get t.preds dst);
    Vec.set t.succs src ((obj, dst) :: Vec.get t.succs src)
  end
  else if t.log_adds && t.cur_owner >= 0 && Hashtbl.mem t.tvf key then begin
    (* promotion: a patched per-fn dataflow re-derives an edge that the old
       generation carried only as a [THREAD-VF] edge. A cold build would
       have added it in the oblivious stage, so reclassify it — it gains an
       owner, leaves the thread-vf registry, and counts as an oblivious
       addition (the add log feeds the spliced def-use index and the
       dirty-object computation). *)
    Hashtbl.remove t.tvf key;
    Hashtbl.remove t.ekind key;
    t.thread_edges <- t.thread_edges - 1;
    Hashtbl.replace t.owners key t.cur_owner;
    t.add_log <- key :: t.add_log
  end

let has_edge t src obj dst = Hashtbl.mem t.edge_set (src, obj, dst)

let edge_kind t ~src ~obj ~dst =
  Option.value ~default:k_oblivious (Hashtbl.find_opt t.ekind (src, obj, dst))

(* ------------------------------------------------------------------------ *)
(* Thread-oblivious construction: per-(function, object) sparse
   reaching-definitions over the function's CFG.                             *)
(* ------------------------------------------------------------------------ *)

(* What a handled join (or symmetric-loop exit) makes visible: per gid, the
   joined threads' (fork gid, start fn, start-fn mods). *)
let join_info_tbl tm mr =
  let tbl : (int, (int * int * Iset.t) list) Hashtbl.t = Hashtbl.create 16 in
  for iid = 0 to Mta.Threads.n_insts tm - 1 do
    match Mta.Threads.join_kills tm iid with
    | [] -> ()
    | kills ->
      let gid = (Mta.Threads.inst tm iid).Mta.Threads.i_gid in
      let cur = ref (Option.value ~default:[] (Hashtbl.find_opt tbl gid)) in
      List.iter
        (fun tid ->
          match Mta.Threads.fork_gid_of tm tid with
          | None -> ()
          | Some fg ->
            List.iter
              (fun sf ->
                if not (List.exists (fun (fg', sf', _) -> fg' = fg && sf' = sf) !cur)
                then cur := (fg, sf, Modref.mod_of mr sf) :: !cur)
              (Mta.Threads.start_fns tm tid))
        kills;
      Hashtbl.replace tbl gid !cur
  done;
  tbl

(* Per-(function, object) sparse reaching-definitions.

   The data-flow state at a program point is a set of channels of def nodes:
   channel 0 holds the ordinary reaching defs; one extra channel per fork
   statement of the function holds the {e bypass} defs — values that reached
   the fork and may still be current because the spawnee "may be executed
   nondeterministically later" (paper §3.2 step 2). A fork's callsite chi is
   {e strong} (sourced from the spawnee's formal-out only) and the pre-fork
   defs move to the fork's bypass channel; a handled join injects the
   spawnee's formal-out into the ordinary channel and kills the matching
   bypass channel — this reproduces both the fork-bypass edge s1 ↪ s2 and
   the join edge s4 ↪ s3 of Figure 6 {e and} the strong-update-through-join
   precision of Figure 1(c), while defs between fork and join still flow
   past the join (s2 ↪ s3). *)
let build_oblivious ?only t ast mr icfg join_info =
  let prog = t.prog in
  ignore icfg;
  let record = t.record_prov <> None in
  (* formal-out nodes injected by a handled join: edges sourced from them
     carry the "join" kind in provenance mode *)
  let join_src : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  Prog.iter_funcs prog (fun f ->
      let fid = f.Func.fid in
      if (match only with Some p -> p fid | None -> true) then begin
      (* every edge this per-fn dataflow derives is owned by [fid]; the
         incremental patcher retracts a function's edges by owner *)
      t.cur_owner <- fid;
      let objs = Iset.union (Modref.mod_of mr fid) (Modref.ref_of mr fid) in
      let n = Func.n_stmts f in
      (* channels: 0 = ordinary defs, 1 + k = bypass of the k-th local fork *)
      let fork_channel = Hashtbl.create 4 in
      let n_forks = ref 0 in
      Func.iter_stmts f (fun i s ->
          match s with
          | Stmt.Fork _ ->
            incr n_forks;
            Hashtbl.replace fork_channel (Prog.gid prog ~fid ~idx:i) !n_forks
          | _ -> ());
      let nchan = 1 + !n_forks in
      Iset.iter
        (fun o ->
          let out = Array.make n [||] in
          let empty_state = Array.make nchan Iset.empty in
          let formal_in = intern t (Formal_in (fid, o)) in
          let queue = Queue.create () in
          let queued = Bitvec.create ~capacity:n () in
          let push i = if Bitvec.set_if_unset queued i then Queue.add i queue in
          push 0;
          while not (Queue.is_empty queue) do
            let i = Queue.pop queue in
            Bitvec.clear queued i;
            let in_state = Array.copy empty_state in
            List.iter
              (fun p ->
                if out.(p) <> [||] then
                  Array.iteri (fun c s -> in_state.(c) <- Iset.union in_state.(c) s) out.(p))
              f.Func.pred.(i);
            if i = 0 then in_state.(0) <- Iset.add formal_in in_state.(0);
            let gid = Prog.gid prog ~fid ~idx:i in
            let all_defs = Array.fold_left Iset.union Iset.empty in_state in
            let kind_of =
              if not record then fun _ -> k_oblivious
              else begin
                let bypass = ref Iset.empty in
                for c = 1 to nchan - 1 do
                  bypass := Iset.union !bypass in_state.(c)
                done;
                let bp = !bypass in
                fun d ->
                  if Hashtbl.mem join_src d then k_join
                  else if Iset.mem d bp then k_fork_bypass
                  else k_oblivious
              end
            in
            let link_all node_id =
              Iset.iter (fun d -> add_edge ~kind:(kind_of d) t d o node_id) all_defs
            in
            let collapse_to node_id =
              (* all channels absorbed into one def node *)
              link_all node_id;
              let st = Array.copy empty_state in
              st.(0) <- Iset.singleton node_id;
              st
            in
            let new_state =
              match Func.stmt f i with
              | Stmt.Load { src; _ } when Iset.mem o (A.pt_var ast src) ->
                link_all (intern t (Stmt_node gid));
                in_state
              | Stmt.Store { dst; _ } when Iset.mem o (A.pt_var ast dst) ->
                collapse_to (intern t (Stmt_node gid))
              | (Stmt.Call _ | Stmt.Fork _) as s -> (
                let callees = A.callees ast ~fid ~idx:i in
                let relevant g =
                  Iset.mem o (Modref.mod_of mr g) || Iset.mem o (Modref.ref_of mr g)
                in
                List.iter
                  (fun g ->
                    if relevant g then
                      Iset.iter
                        (fun d -> add_edge t d o (intern t (Formal_in (g, o))))
                        all_defs)
                  callees;
                let mods = List.filter (fun g -> Iset.mem o (Modref.mod_of mr g)) callees in
                let is_fork = match s with Stmt.Fork _ -> true | _ -> false in
                let after_call =
                  if mods = [] then in_state
                  else begin
                    let chi = intern t (Call_chi (gid, o)) in
                    List.iter
                      (fun g -> add_edge t (intern t (Formal_out (g, o))) o chi)
                      mods;
                    if is_fork then begin
                      (* strong fork chi; pre-fork defs move to the fork's
                         bypass channel *)
                      let st = Array.copy empty_state in
                      st.(0) <- Iset.singleton chi;
                      (match Hashtbl.find_opt fork_channel gid with
                      | Some c -> st.(c) <- all_defs
                      | None -> ());
                      st
                    end
                    else begin
                      (* synchronous call: the chi absorbs every channel; the
                         old value passes around only when some callee may
                         leave the object untouched *)
                      if List.exists (fun g -> not (Iset.mem o (Modref.mod_of mr g))) callees
                      then link_all chi;
                      let st = Array.copy empty_state in
                      st.(0) <- Iset.singleton chi;
                      st
                    end
                  end
                in
                (* a fork also writes the thread object into the handle *)
                match s with
                | Stmt.Fork { handle = Some h; _ } when Iset.mem o (A.pt_var ast h) ->
                  let nd = intern t (Stmt_node gid) in
                  Array.iter (fun ch -> Iset.iter (fun d -> add_edge t d o nd) ch) after_call;
                  let st = Array.copy empty_state in
                  st.(0) <- Iset.singleton nd;
                  st
                | _ -> after_call)
              | Stmt.Return _ when Iset.mem o (Modref.mod_of mr fid) ->
                link_all (intern t (Formal_out (fid, o)));
                in_state
              | _ -> (
                (* handled join or symmetric loop exit (paper §3.2 step 3):
                   inject the spawnees' formal-outs; kill matching bypasses *)
                match Hashtbl.find_opt join_info gid with
                | Some infos ->
                  let st = Array.copy in_state in
                  List.iter
                    (fun (fg, sf, mods) ->
                      if Iset.mem o mods then begin
                        let fo = intern t (Formal_out (sf, o)) in
                        if record then Hashtbl.replace join_src fo ();
                        st.(0) <- Iset.add fo st.(0)
                      end;
                      match Hashtbl.find_opt fork_channel fg with
                      | Some c -> st.(c) <- Iset.empty
                      | None -> ())
                    infos;
                  st
                | None -> in_state)
            in
            let changed =
              out.(i) = [||]
              ||
              let old = out.(i) in
              let rec differs c =
                c < nchan && ((not (Iset.equal new_state.(c) old.(c))) || differs (c + 1))
              in
              differs 0
            in
            if changed then begin
              out.(i) <- new_state;
              List.iter push f.Func.succ.(i)
            end
          done)
        objs
      end);
  t.cur_owner <- -1

(* ------------------------------------------------------------------------ *)
(* Thread-aware edges: [THREAD-VF] with the lock filter.

   Pair discovery is a pure function of the thread-oblivious snapshot and
   the mta indexes, so it fans out per object over [Fsam_par.run_chunks]:
   each chunk owns a contiguous slice of the sorted object list, memoises
   queries in chunk-local tables, and returns its edge / racy-mark events
   in discovery order plus its work tallies. Events are applied serially in
   chunk order and the tallies flushed to the metrics registry afterwards —
   the edge set, racy sets and counters are identical for every [jobs]
   value.                                                                    *)
(* ------------------------------------------------------------------------ *)

(* Span heads and tails (Definitions 4 and 5), per (span, object), against
   the thread-oblivious def-use edges built above. *)
type span_info = { hd : (int, unit) Hashtbl.t; tl : (int, unit) Hashtbl.t }

(* Chunk-local discovery state. Chunks must not touch [Obs.Metrics] (not
   domain-safe), so the work tallies ride back with the chunk result. *)
type chunk_res = {
  mhp_stats : Mta.Mhp.stats;
  lk_cache : Mta.Locks.cache;
  mutable considered : int;
  mutable skipped_stmt : int;
  mutable lock_filtered : int;
  (* (obj, store gid, access gid, unprotected) in discovery order *)
  mutable events : (int * int * int * bool) list;
  (* chunk-local pair-verdict recorder, absorbed in chunk order *)
  c_prov : Fsam_prov.t option;
}

(* Gid-level per-object index of the thread-oblivious def-use snapshot.
   Definitions 4/5 refer to the def-use chains available when the lock
   analysis runs — edges added by [THREAD-VF] itself must not influence the
   heads/tails — so the index is taken before any thread-aware edge lands;
   the head/tail tests then walk short adjacency lists instead of probing
   the whole edge set per candidate.

   The index lives in tombstoned arena rows ({!Arena.Dyn}) keyed
   [(o * n_stmts) + gid] and persists on [t]: the incremental patcher
   splices it in place (tombstoned deletion of retracted edges, appended
   insertion of re-derived ones) so a patched generation probes exactly the
   snapshot a cold rebuild would. Row membership, never order, is queried.
   pred rows are keyed by the edge head (o, use gid) holding def gids; succ
   rows by the def (o, def gid) holding use gids. *)
let build_obl_index t =
  let stride = Prog.n_stmts t.prog in
  let pred = Arena.Dyn.create ~capacity:4096 () in
  let succ = Arena.Dyn.create ~capacity:4096 () in
  let gid_of i = match Vec.get t.nodes i with Stmt_node g -> g | _ -> -1 in
  Hashtbl.iter
    (fun (src, o, dst) () ->
      let gs = gid_of src and gd = gid_of dst in
      if gs >= 0 && gd >= 0 then begin
        Arena.Dyn.add pred ~key:((o * stride) + gd) gs;
        Arena.Dyn.add succ ~key:((o * stride) + gs) gd
      end)
    t.edge_set;
  t.obl_pred <- Some pred;
  t.obl_succ <- Some succ

(* [THREAD-VF] pair discovery and application, restricted to the objects
   accepted by [obj_filter] — the full sorted store-object list on a cold
   build, the dirty objects on a patch. Per-object work is independent (all
   edges, racy marks and dedup checks are keyed by the object), so a
   filtered run produces, for each accepted object, exactly the edges,
   racy marks and work counters of the cold run. *)
let discover_objects t config ~jobs ast tm mhp lk pcg ~obj_filter =
  let prog = t.prog in
  let record = t.record_prov <> None in
  let tbl_add tbl k v =
    Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  (* Index stores and accesses per object, recording each access's points-to
     set once — the only [A.pt_var] calls of the phase. (Union-find lookups
     path-compress, so they must not run inside the parallel chunks; the
     table also hoists the repeated per-member lookups out of the span
     head/tail computation.) *)
  let stores_of : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let accesses_of : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let pts_of_gid : (int, Iset.t) Hashtbl.t = Hashtbl.create 256 in
  Prog.iter_stmts prog (fun gid _ s ->
      match s with
      | Stmt.Load { src; _ } ->
        let pts = A.pt_var ast src in
        Hashtbl.replace pts_of_gid gid pts;
        Iset.iter (fun o -> tbl_add accesses_of o gid) pts
      | Stmt.Store { dst; _ } ->
        let pts = A.pt_var ast dst in
        Hashtbl.replace pts_of_gid gid pts;
        Iset.iter
          (fun o ->
            tbl_add accesses_of o gid;
            tbl_add stores_of o gid)
          pts
      | _ -> ());
  let pts_at gid = Option.value ~default:Iset.empty (Hashtbl.find_opt pts_of_gid gid) in
  (* the persistent snapshot index (see [build_obl_index]); read-only for
     the duration of the fan-out, so the chunk domains share it directly *)
  let obl_stride = Prog.n_stmts prog in
  let obl_pred = Option.get t.obl_pred and obl_succ = Option.get t.obl_succ in
  let objs =
    Array.of_list
      (List.sort compare
         (Hashtbl.fold (fun o _ acc -> if obj_filter o then o :: acc else acc) stores_of []))
  in
  (* Pure per-object discovery: runs in a chunk, touches only read-only
     shared state plus its own [res] and memo tables. *)
  let discover ~lo ~hi =
    let res =
      {
        mhp_stats = Mta.Mhp.fresh_stats ();
        lk_cache = Mta.Locks.make_cache ();
        considered = 0;
        skipped_stmt = 0;
        lock_filtered = 0;
        events = [];
        c_prov = (if record then Some (Fsam_prov.local ()) else None);
      }
    in
    (* the justification pass re-runs the lock queries with a throwaway
       cache so the flushed counters stay identical with recording off *)
    let why_cache = if record then Some (Mta.Locks.make_cache ()) else None in
    let span_accs = Hashtbl.create 64 in
    let span_cache = Hashtbl.create 64 in
    let mhp_cache = Hashtbl.create 1024 in
    let threads_of_gid = Hashtbl.create 256 in
    (* a span's load/store members with their gids and points-to sets, once
       per span visited by this chunk *)
    let span_accesses sid =
      match Hashtbl.find_opt span_accs sid with
      | Some l -> l
      | None ->
        let l =
          List.filter_map
            (fun iid ->
              let gid = (Mta.Threads.inst tm iid).Mta.Threads.i_gid in
              match Prog.stmt_at prog gid with
              | Stmt.Load _ -> Some (iid, gid, false, pts_at gid)
              | Stmt.Store _ -> Some (iid, gid, true, pts_at gid)
              | _ -> None)
            (Mta.Locks.span_members lk sid)
        in
        Hashtbl.replace span_accs sid l;
        l
    in
    let span_hd_tl sid o =
      match Hashtbl.find_opt span_cache (sid, o) with
      | Some si -> si
      | None ->
        let accs = List.filter (fun (_, _, _, pts) -> Iset.mem o pts) (span_accesses sid) in
        (* per-gid occurrence counts; instance ids are unique within the
           span, and a gid determines its instance's gid, so "another
           instance (iid', g') with an edge to/from g" reduces to: some
           def-use neighbour g' of g is accessed here — by any instance if
           g' ≠ g, by at least two if g' = g *)
        let acc_cnt = Hashtbl.create 8 and st_cnt = Hashtbl.create 8 in
        let bump tbl g =
          Hashtbl.replace tbl g (1 + Option.value ~default:0 (Hashtbl.find_opt tbl g))
        in
        List.iter
          (fun (_, g, is_store, _) ->
            bump acc_cnt g;
            if is_store then bump st_cnt g)
          accs;
        let blocked dyn cnt g =
          Arena.Dyn.exists_row dyn
            ((o * obl_stride) + g)
            (fun g' ->
              match Hashtbl.find_opt cnt g' with
              | None -> false
              | Some c -> g' <> g || c >= 2)
        in
        let hd = Hashtbl.create 8 and tl = Hashtbl.create 8 in
        List.iter
          (fun (iid, g, is_store, _) ->
            if not (blocked obl_pred acc_cnt g) then Hashtbl.replace hd iid ();
            if is_store && not (blocked obl_succ st_cnt g) then Hashtbl.replace tl iid ())
          accs;
        let si = { hd; tl } in
        Hashtbl.replace span_cache (sid, o) si;
        si
    in
    (* statement-level MHP per configuration, memoised: the same (s, s')
       pair recurs once per commonly-pointed object; both backends are
       symmetric, so the key is canonicalised *)
    let stmt_mhp s s' =
      let key = if s <= s' then (s, s') else (s', s) in
      match Hashtbl.find_opt mhp_cache key with
      | Some b -> b
      | None ->
        let b =
          if config.use_interleaving then Mta.Mhp.mhp_stmt ~stats:res.mhp_stats mhp s s'
          else Mta.Pcg.mec_stmt pcg s s'
        in
        Hashtbl.replace mhp_cache key b;
        b
    in
    let inst_pairs s s' =
      if config.use_interleaving then Mta.Mhp.mhp_pairs_inst ~stats:res.mhp_stats mhp s s'
      else
        (* PCG gives no instance-level facts: all instance combinations *)
        List.concat_map
          (fun i -> List.map (fun j -> (i, j)) (Mta.Threads.insts_of_gid tm s'))
          (Mta.Threads.insts_of_gid tm s)
    in
    (* Definition 6: the instance pair cannot pass a value for o *)
    let non_interfering o (i, j) =
      List.exists
        (fun (sp, sp') ->
          let si = span_hd_tl sp o and sj = span_hd_tl sp' o in
          (not (Hashtbl.mem si.tl i)) || not (Hashtbl.mem sj.hd j))
        (Mta.Locks.common_lock ~cache:res.lk_cache lk i j)
    in
    (* Like [non_interfering] but returns the first justifying span pair and
       which half of Definition 6 held (provenance mode only). *)
    let non_interfering_why o (i, j) =
      let cache = Option.get why_cache in
      List.find_map
        (fun (sp, sp') ->
          let si = span_hd_tl sp o and sj = span_hd_tl sp' o in
          let store_not_tail = not (Hashtbl.mem si.tl i) in
          let load_not_head = not (Hashtbl.mem sj.hd j) in
          if store_not_tail || load_not_head then Some (sp, sp', store_not_tail, load_not_head)
          else None)
        (Mta.Locks.common_lock ~cache lk i j)
    in
    let record_verdict o s s' ~tag ~x ~y ~z =
      match res.c_prov with
      | Some r -> Fsam_prov.set r ~space:Fsam_prov.sp_pair ~k1:s ~k2:s' ~obj:o ~tag ~x ~y ~z
      | None -> ()
    in
    let consider_edge o s s' =
      res.considered <- res.considered + 1;
      if not (stmt_mhp s s') then begin
        res.skipped_stmt <- res.skipped_stmt + 1;
        if record then record_verdict o s s' ~tag:Fsam_prov.p_skipped_mhp ~x:0 ~y:0 ~z:0
      end
      else begin
        let pairs = inst_pairs s s' in
        let blocked = config.use_lock && pairs <> [] && List.for_all (non_interfering o) pairs in
        if blocked then begin
          res.lock_filtered <- res.lock_filtered + 1;
          if record then begin
            let i, j = List.hd pairs in
            match non_interfering_why o (i, j) with
            | Some (sp, sp', store_not_tail, load_not_head) ->
              record_verdict o s s' ~tag:Fsam_prov.p_filtered_lock ~x:i ~y:j
                ~z:(Fsam_prov.pack_spans ~sp ~sp' ~store_not_tail ~load_not_head)
            | None -> ()
          end
        end
        else begin
          (* Strong updates: an interfering pair forbids them on o — the
             interleaving may order the accesses either way — unless every
             instance pair is protected by a common lock, in which case
             mutual exclusion guarantees the partner only observes
             section-exit state (the Figure 1(e) situation: the strong
             update at the section's tail store is what keeps the earlier
             section store out of pt(c)). *)
          let unprotected =
            (not config.use_lock)
            || pairs = []
            || List.exists (fun (i, j) -> not (Mta.Locks.commonly_protected lk i j)) pairs
          in
          if record then begin
            let y, z = match pairs with (i, j) :: _ -> (i, j) | [] -> (-1, -1) in
            record_verdict o s s' ~tag:Fsam_prov.p_kept
              ~x:(if unprotected then 1 else 0)
              ~y ~z
          end;
          res.events <- (o, s, s', unprotected) :: res.events
        end
      end
    in
    (* Escape filter: an object whose accesses all come from one non-multi-
       forked thread cannot be in any MHP aliased pair — skip its whole pair
       space. (Only valid under [THREAD-VF]'s common-object requirement; the
       No-Value-Flow ablation pairs stores with every access regardless.) *)
    let gid_threads g =
      match Hashtbl.find_opt threads_of_gid g with
      | Some s -> s
      | None ->
        let s =
          List.fold_left
            (fun acc iid -> Iset.add (Mta.Threads.inst tm iid).Mta.Threads.i_thread acc)
            Iset.empty (Mta.Threads.insts_of_gid tm g)
        in
        Hashtbl.replace threads_of_gid g s;
        s
    in
    let may_escape o =
      let ts =
        List.fold_left
          (fun acc g -> Iset.union acc (gid_threads g))
          Iset.empty
          (Option.value ~default:[] (Hashtbl.find_opt accesses_of o))
      in
      match Iset.elements ts with
      | [] -> false
      | [ t' ] -> Mta.Threads.is_multi tm t'
      | _ -> true
    in
    for x = lo to hi - 1 do
      let o = objs.(x) in
      (* one timeline event per object processed: [a] = object id, [b] =
         pairs considered so far — lets the profiler attribute chunk
         imbalance to the dominant object keys *)
      Obs.Timeline.emit ~kind:Obs.Timeline.k_item ~a:o ~b:res.considered;
      let stores = Option.value ~default:[] (Hashtbl.find_opt stores_of o) in
      let escapes = lazy (may_escape o) in
      List.iter
        (fun s ->
          if config.use_value_flow then begin
            (* [THREAD-VF]: common value flow required — targets are the
               accesses of the same object *)
            if Lazy.force escapes then
              List.iter
                (fun s' -> consider_edge o s s')
                (Option.value ~default:[] (Hashtbl.find_opt accesses_of o))
          end
          else
            (* No-Value-Flow: pair with every load/store in the program *)
            Prog.iter_stmts prog (fun s' _ st ->
                match st with
                | Stmt.Load _ | Stmt.Store _ -> consider_edge o s s'
                | _ -> ()))
        stores
    done;
    res.events <- List.rev res.events;
    res
  in
  (* Cost model for the adaptive fan-out: an object's pair space is exactly
     |stores| x |targets| (its accesses under [THREAD-VF], every access
     statement in the program under the No-Value-Flow ablation) — the known
     per-object degrees, so block boundaries land between the hot objects
     instead of lumping them into one chunk. *)
  let n_access_stmts =
    let n = ref 0 in
    Prog.iter_stmts prog (fun _ _ s ->
        match s with Stmt.Load _ | Stmt.Store _ -> incr n | _ -> ());
    !n
  in
  let pair_weight x =
    let o = objs.(x) in
    let deg tbl = List.length (Option.value ~default:[] (Hashtbl.find_opt tbl o)) in
    let targets = if config.use_value_flow then deg accesses_of else n_access_stmts in
    1 + (deg stores_of * targets)
  in
  let chunks =
    Obs.Span.with_ ~name:"svfg.pair_discovery" (fun () ->
        Fsam_par.run_chunks ~label:"svfg.pairs" ~weight:pair_weight ~jobs
          ~n:(Array.length objs) discover)
  in
  (* serial in-order application of the discovered events *)
  Obs.Span.with_ ~name:"svfg.pair_apply" (fun () ->
      Obs.Timeline.with_ring ~region:"svfg.pair_apply" ~lane:0 (fun () ->
      List.iteri
        (fun ci res ->
          Obs.Timeline.emit ~kind:Obs.Timeline.k_absorb ~a:ci
            ~b:(List.length res.events);
          (match (t.record_prov, res.c_prov) with
          | Some dst, Some src -> Fsam_prov.absorb dst src
          | _ -> ());
          List.iter
            (fun (o, s, s', unprotected) ->
              let a = intern t (Stmt_node s) and b = intern t (Stmt_node s') in
              if not (has_edge t a o b) then begin
                add_edge ~kind:k_thread_vf t a o b;
                t.thread_edges <- t.thread_edges + 1
              end;
              if unprotected then begin
                let mark g =
                  Hashtbl.replace t.racy g
                    (Iset.add o (Option.value ~default:Iset.empty (Hashtbl.find_opt t.racy g)))
                in
                mark s;
                match Prog.stmt_at prog s' with Stmt.Store _ -> mark s' | _ -> ()
              end)
            res.events)
        chunks));
  (* flush the chunk-local work tallies *)
  let sum f = List.fold_left (fun n res -> n + f res) 0 chunks in
  Obs.Metrics.(add (counter "svfg.thread_pairs_considered") (sum (fun r -> r.considered)));
  Obs.Metrics.(add (counter "svfg.pairs_skipped_stmt") (sum (fun r -> r.skipped_stmt)));
  Obs.Metrics.(add (counter "svfg.lock_filtered_edges") (sum (fun r -> r.lock_filtered)));
  Obs.Metrics.(
    add (counter "mhp.summary_stmt_queries") (sum (fun r -> r.mhp_stats.Mta.Mhp.stmt_queries)));
  Obs.Metrics.(
    add (counter "mhp.summary_pair_queries") (sum (fun r -> r.mhp_stats.Mta.Mhp.pair_queries)));
  Obs.Metrics.(
    add (counter "mhp.summary_thread_checks") (sum (fun r -> r.mhp_stats.Mta.Mhp.thread_checks)));
  Obs.Metrics.(
    add (counter "mhp.summary_inst_checks") (sum (fun r -> r.mhp_stats.Mta.Mhp.inst_checks)));
  Obs.Metrics.(
    add (counter "mhp.summary_naive_checks") (sum (fun r -> r.mhp_stats.Mta.Mhp.naive_checks)));
  Obs.Metrics.(
    add (counter "locks.queries") (sum (fun r -> Mta.Locks.cache_queries r.lk_cache)));
  Obs.Metrics.(
    add (counter "locks.bitset_hits") (sum (fun r -> Mta.Locks.cache_bitset_hits r.lk_cache)));
  Obs.Metrics.(
    add (counter "locks.pair_memo_hits") (sum (fun r -> Mta.Locks.cache_memo_hits r.lk_cache)));
  Obs.Metrics.(
    add (counter "locks.span_pair_checks") (sum (fun r -> Mta.Locks.cache_span_checks r.lk_cache)));
  Obs.Metrics.(
    add
      (counter "locks.naive_span_checks")
      (sum (fun r -> Mta.Locks.cache_naive_checks r.lk_cache)))

let build_thread_aware t config ~jobs ast tm mhp lk pcg =
  build_obl_index t;
  discover_objects t config ~jobs ast tm mhp lk pcg ~obj_filter:(fun _ -> true)

let build ?(config = default_config) ?(jobs = 1) ?prov prog ast mr icfg tm mhp lk pcg =
  let t =
    {
      prog;
      nodes = Vec.create ();
      index = Hashtbl.create 1024;
      preds = Vec.create ();
      succs = Vec.create ();
      edge_set = Hashtbl.create 4096;
      thread_edges = 0;
      racy = Hashtbl.create 64;
      ekind = Hashtbl.create 64;
      record_prov = prov;
      owners = Hashtbl.create 1024;
      tvf = Hashtbl.create 256;
      cur_owner = -1;
      log_adds = false;
      add_log = [];
      obl_pred = None;
      obl_succ = None;
    }
  in
  (* mu/chi annotation material (what each join makes visible) *)
  let join_info = Obs.Span.with_ ~name:"svfg.join_info" (fun () -> join_info_tbl tm mr) in
  (* thread-oblivious def-use edge derivation (memory-SSA reaching defs) *)
  Obs.Span.with_ ~name:"svfg.oblivious" (fun () -> build_oblivious t ast mr icfg join_info);
  (* [THREAD-VF] edges, filtered by the lock analysis *)
  if config.thread_aware then
    Obs.Span.with_ ~name:"svfg.thread_aware" (fun () ->
        build_thread_aware t config ~jobs ast tm mhp lk pcg);
  Obs.Metrics.(set (gauge "svfg.nodes") (n_nodes t));
  Obs.Metrics.(set (gauge "svfg.edges") (n_edges t));
  Obs.Metrics.(set (gauge "svfg.thread_aware_edges") t.thread_edges);
  Obs.Metrics.(set (gauge "svfg.racy_stores") (Hashtbl.length t.racy));
  t

let racy_objs t gid = Option.value ~default:Iset.empty (Hashtbl.find_opt t.racy gid)

(* Stable textual key of a node's structure — gids and object ids, never
   the intern-order index, so fingerprints compare across graphs that
   interned their nodes in different orders. *)
let node_key t i =
  match Vec.get t.nodes i with
  | Stmt_node g -> "s" ^ string_of_int g
  | Formal_in (f, o) -> Printf.sprintf "i%d.%d" f o
  | Formal_out (f, o) -> Printf.sprintf "o%d.%d" f o
  | Call_chi (g, o) -> Printf.sprintf "c%d.%d" g o

(* Canonical structural fingerprint: edge counts, the sorted structural
   edge triples, and the racy-object sets per store. Keys are structural
   (gids / fids / object ids), not intern-order node indices, and nodes
   that carry no edges contribute nothing — so a patched generation (which
   keeps the old generation's node numbering and may retain orphaned
   interns) digests equal to a cold rebuild iff they denote the same graph.
   This is the identity the jobs-invariance tests and the serve
   differential mode both check. *)
(* (live cells, tombstoned cells) over the pred/succ index arenas; (0, 0)
   before [index_edges] materializes them. Observability only. *)
let arena_occupancy t =
  let occ = function
    | Some a -> (Arena.Dyn.live a, Arena.Dyn.tombstones a)
    | None -> (0, 0)
  in
  let pl, pt = occ t.obl_pred and sl, st = occ t.obl_succ in
  (pl + sl, pt + st)

let digest t =
  let edges =
    Hashtbl.fold
      (fun (s, o, d) () acc ->
        Printf.sprintf "%s:%d>%s;" (node_key t s) o (node_key t d) :: acc)
      t.edge_set []
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "e=%d t=%d;" (n_edges t) t.thread_edges);
  List.iter (Buffer.add_string buf) (List.sort compare edges);
  for gid = 0 to Prog.n_stmts t.prog - 1 do
    let r = racy_objs t gid in
    if not (Iset.is_empty r) then
      Buffer.add_string buf
        (Printf.sprintf "r%d=%s;" gid
           (String.concat "," (List.map string_of_int (Iset.elements r))))
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------------ *)
(* In-place incremental patching (fsam serve warm edits).

   [patch old ...] produces a new generation's SVFG from the previous one
   without rebuilding the clean regions:

   1. {b dirty functions} — a function's per-fn oblivious dataflow is a
      pure function of its statements, the points-to sets at its loads /
      stores / fork handles, its own and its callees' mod/ref summaries,
      and the join rows at its gids. A function any of whose inputs drifted
      (plus the edited functions themselves) is dirty; everything else
      reproduces its old edges verbatim in a cold build, so they are kept.
      One closure step: a [Formal_out -> Formal_in] edge can be derived by
      several functions but records only its first owner, so when that
      owner is dirty every potential adder (any function with a new join
      row exposing the source thread's mods on that object) is made dirty
      too — after which retract-and-recompute is exact for this shape as
      well.
   2. {b retract} every oblivious edge owned by a dirty function
      (tombstoning its rows in the spliced def-use index), then re-run the
      per-fn oblivious construction for dirty functions only, appending
      re-derived rows.
   3. {b dirty objects} — [THREAD-VF] discovery is independent per object
      (edges, dedup checks and racy marks are all keyed by the object), and
      per object it is a pure function of the object's oblivious rows, its
      access lists with their points-to sets, and the reused mta indexes.
      An object whose oblivious row multiset changed, or that entered/left
      an access's points-to set, is dirty; its old thread-vf edges and racy
      marks are discarded and discovery re-runs for exactly the dirty
      objects over the parallel fan-out. Clean objects keep their edges and
      marks, which a cold build would reproduce identically.

   The result is byte-identical (structural digest, racy sets, counters of
   retained work excluded) to a cold [build] of the new program — the serve
   engine's differential mode re-certifies this on every edit.

   Preconditions the caller (the serve engine) must establish: statement
   gids identical across generations (same functions, same per-function
   statement counts), identical object tables, the thread model / MHP /
   lock analysis reused from the previous generation (which itself implies
   unchanged call, fork and join resolution), provenance off, and a
   previous graph built with the thread-aware stage on. Violations the
   patcher can detect cheaply return [Error reason] and the engine falls
   back to a cold rebuild, counting the reason. *)
(* ------------------------------------------------------------------------ *)

type patch_stats = {
  ps_dirty_fns : int;
  ps_dirty_objs : int;
  ps_removed : int;  (** oblivious edges retracted *)
  ps_added : int;  (** oblivious edges re-derived (including promotions) *)
}

let vec_copy v = Vec.of_list (Vec.to_list v)

let clone t =
  {
    prog = t.prog;
    nodes = vec_copy t.nodes;
    index = Hashtbl.copy t.index;
    preds = vec_copy t.preds;
    succs = vec_copy t.succs;
    edge_set = Hashtbl.copy t.edge_set;
    thread_edges = t.thread_edges;
    racy = Hashtbl.copy t.racy;
    ekind = Hashtbl.copy t.ekind;
    record_prov = t.record_prov;
    owners = Hashtbl.copy t.owners;
    tvf = Hashtbl.copy t.tvf;
    cur_owner = -1;
    log_adds = false;
    add_log = [];
    obl_pred = Option.map Arena.Dyn.copy t.obl_pred;
    obl_succ = Option.map Arena.Dyn.copy t.obl_succ;
  }

let patch old ?(config = default_config) ?(jobs = 1) ~prog ~old_ast ~ast ~old_mr ~mr ~icfg ~tm
    ~mhp ~lk ~pcg ~edited_fids () =
  let old_prog = old.prog in
  let shape_ok =
    Prog.n_funcs prog = Prog.n_funcs old_prog
    && Prog.n_stmts prog = Prog.n_stmts old_prog
    &&
    let ok = ref true in
    Prog.iter_funcs prog (fun f ->
        if Func.n_stmts f <> Func.n_stmts (Prog.func old_prog f.Func.fid) then ok := false);
    !ok
  in
  if old.record_prov <> None then Error "svfg_provenance"
  else if (not config.thread_aware) || old.obl_pred = None then Error "svfg_no_index"
  else if not shape_ok then Error "svfg_shape"
  else if Hashtbl.length old.owners <> n_edges old - Hashtbl.length old.tvf then
    Error "svfg_untracked"
  else begin
    let t = clone old in
    t.prog <- prog;
    let nf = Prog.n_funcs prog in
    let dirty = Array.make nf false in
    List.iter (fun f -> if f >= 0 && f < nf then dirty.(f) <- true) edited_fids;
    (* -- step 1: dirty functions ---------------------------------------- *)
    let old_ji = join_info_tbl tm old_mr in
    let new_ji = join_info_tbl tm mr in
    let mr_drift = Array.make nf false in
    for fid = 0 to nf - 1 do
      if
        (not (Iset.equal (Modref.mod_of old_mr fid) (Modref.mod_of mr fid)))
        || not (Iset.equal (Modref.ref_of old_mr fid) (Modref.ref_of mr fid))
      then begin
        mr_drift.(fid) <- true;
        dirty.(fid) <- true
      end
    done;
    let dirty_objs = ref Iset.empty in
    let ji_rows tbl gid = Option.value ~default:[] (Hashtbl.find_opt tbl gid) in
    let ji_rows_equal a b =
      List.length a = List.length b
      && List.for_all2
           (fun (fg, sf, m) (fg', sf', m') -> fg = fg' && sf = sf' && Iset.equal m m')
           a b
    in
    (* the points-to set an access statement indexes the SVFG by *)
    let acc_pts solver s =
      match s with
      | Stmt.Load { src; _ } -> A.pt_var solver src
      | Stmt.Store { dst; _ } -> A.pt_var solver dst
      | Stmt.Fork { handle = Some h; _ } -> A.pt_var solver h
      | _ -> Iset.empty
    in
    Prog.iter_funcs prog (fun f ->
        let fid = f.Func.fid in
        Func.iter_stmts f (fun i sn ->
            let gid = Prog.gid prog ~fid ~idx:i in
            let so = Prog.stmt_at old_prog gid in
            (* join rows at this gid drifted (e.g. a joined thread's start
               function now mods a different object set) *)
            if not (ji_rows_equal (ji_rows old_ji gid) (ji_rows new_ji gid)) then
              dirty.(fid) <- true;
            (* callee mod/ref summaries feed the caller's channels *)
            (match sn with
            | Stmt.Call _ | Stmt.Fork _ ->
              if List.exists (fun g -> mr_drift.(g)) (A.callees ast ~fid ~idx:i) then
                dirty.(fid) <- true
            | _ -> ());
            let po = acc_pts old_ast so and pn = acc_pts ast sn in
            if so <> sn then
              (* an edited statement: every object either side touches must
                 re-discover its pair space *)
              dirty_objs := Iset.union !dirty_objs (Iset.union po pn)
            else if not (Iset.equal po pn) then begin
              dirty.(fid) <- true;
              dirty_objs :=
                Iset.union !dirty_objs (Iset.union (Iset.diff po pn) (Iset.diff pn po))
            end));
    (* Formal_out -> Formal_in adder closure: potential adders of a
       [Formal_out (sf, o)] def are the functions with a new join row
       exposing sf's mods on o *)
    let adders : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun gid rows ->
        let fid = Prog.func_of_gid prog gid in
        List.iter
          (fun (_, sf, mods) ->
            Iset.iter
              (fun o ->
                let r =
                  match Hashtbl.find_opt adders (sf, o) with
                  | Some r -> r
                  | None ->
                    let r = ref [] in
                    Hashtbl.replace adders (sf, o) r;
                    r
                in
                if not (List.mem fid !r) then r := fid :: !r)
              mods)
          rows)
      new_ji;
    let changed = ref true in
    while !changed do
      changed := false;
      Hashtbl.iter
        (fun ((src, o, dst) as k) () ->
          if not (Hashtbl.mem t.tvf k) then
            match (Vec.get t.nodes src, Vec.get t.nodes dst) with
            | Formal_out (sf, _), Formal_in _ -> (
              match Hashtbl.find_opt t.owners k with
              | Some ow when dirty.(ow) -> (
                match Hashtbl.find_opt adders (sf, o) with
                | Some r ->
                  List.iter
                    (fun f ->
                      if not dirty.(f) then begin
                        dirty.(f) <- true;
                        changed := true
                      end)
                    !r
                | None -> ())
              | _ -> ())
            | _ -> ())
        t.edge_set
    done;
    (* -- step 2: retract and recompute the dirty oblivious regions ------- *)
    let obl_pred = Option.get t.obl_pred and obl_succ = Option.get t.obl_succ in
    let stride = Prog.n_stmts prog in
    let gid_of i = match Vec.get t.nodes i with Stmt_node g -> g | _ -> -1 in
    let obl_removed : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
    let obl_added : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
    let log_pair tbl o p =
      match Hashtbl.find_opt tbl o with
      | Some r -> r := p :: !r
      | None -> Hashtbl.replace tbl o (ref [ p ])
    in
    let removed = Hashtbl.create 256 in
    let touched = Hashtbl.create 256 in
    let drop_edge ((src, o, dst) as k) =
      Hashtbl.remove t.edge_set k;
      Hashtbl.remove t.owners k;
      Hashtbl.replace removed k ();
      Hashtbl.replace touched src ();
      Hashtbl.replace touched dst ();
      let gs = gid_of src and gd = gid_of dst in
      if gs >= 0 && gd >= 0 then begin
        ignore (Arena.Dyn.remove obl_pred ~key:((o * stride) + gd) gs);
        ignore (Arena.Dyn.remove obl_succ ~key:((o * stride) + gs) gd);
        log_pair obl_removed o (gs, gd)
      end
    in
    Hashtbl.fold (fun k () acc -> k :: acc) t.edge_set []
    |> List.iter (fun k ->
           if not (Hashtbl.mem t.tvf k) then
             match Hashtbl.find_opt t.owners k with
             | Some ow when dirty.(ow) -> drop_edge k
             | _ -> ());
    let prune tbl =
      Hashtbl.iter
        (fun v () ->
          Vec.set t.preds v
            (List.filter (fun (o, s) -> not (Hashtbl.mem tbl (s, o, v))) (Vec.get t.preds v));
          Vec.set t.succs v
            (List.filter (fun (o, d) -> not (Hashtbl.mem tbl (v, o, d))) (Vec.get t.succs v)))
        touched
    in
    prune removed;
    let n_removed = Hashtbl.length removed in
    t.log_adds <- true;
    build_oblivious ~only:(fun fid -> dirty.(fid)) t ast mr icfg new_ji;
    t.log_adds <- false;
    let n_added = List.length t.add_log in
    List.iter
      (fun (src, o, dst) ->
        let gs = gid_of src and gd = gid_of dst in
        if gs >= 0 && gd >= 0 then begin
          Arena.Dyn.add obl_pred ~key:((o * stride) + gd) gs;
          Arena.Dyn.add obl_succ ~key:((o * stride) + gs) gd;
          log_pair obl_added o (gs, gd)
        end)
      t.add_log;
    t.add_log <- [];
    (* -- step 3: dirty objects, thread-vf retraction, re-discovery ------- *)
    let keys tbl = Hashtbl.fold (fun o _ acc -> o :: acc) tbl [] in
    List.iter
      (fun o ->
        if not (Iset.mem o !dirty_objs) then begin
          let l tbl =
            match Hashtbl.find_opt tbl o with
            | Some r -> List.sort compare !r
            | None -> []
          in
          if l obl_removed <> l obl_added then dirty_objs := Iset.add o !dirty_objs
        end)
      (List.sort_uniq compare (keys obl_removed @ keys obl_added));
    let dobjs = !dirty_objs in
    Hashtbl.reset touched;
    let removed_tvf = Hashtbl.create 64 in
    Hashtbl.fold (fun k () acc -> k :: acc) t.tvf []
    |> List.iter (fun ((src, o, dst) as k) ->
           if Iset.mem o dobjs then begin
             Hashtbl.remove t.tvf k;
             t.thread_edges <- t.thread_edges - 1;
             Hashtbl.remove t.edge_set k;
             Hashtbl.replace removed_tvf k ();
             Hashtbl.replace touched src ();
             Hashtbl.replace touched dst ()
           end);
    prune removed_tvf;
    Hashtbl.fold (fun g r acc -> (g, r) :: acc) t.racy []
    |> List.iter (fun (g, r) ->
           let r' = Iset.diff r dobjs in
           if Iset.is_empty r' then Hashtbl.remove t.racy g
           else if not (Iset.equal r r') then Hashtbl.replace t.racy g r');
    discover_objects t config ~jobs ast tm mhp lk pcg ~obj_filter:(fun o -> Iset.mem o dobjs);
    Obs.Metrics.(set (gauge "svfg.nodes") (n_nodes t));
    Obs.Metrics.(set (gauge "svfg.edges") (n_edges t));
    Obs.Metrics.(set (gauge "svfg.thread_aware_edges") t.thread_edges);
    Obs.Metrics.(set (gauge "svfg.racy_stores") (Hashtbl.length t.racy));
    let n_dirty = Array.fold_left (fun n b -> if b then n + 1 else n) 0 dirty in
    Obs.Metrics.(add (counter "svfg.patch_runs") 1);
    Obs.Metrics.(add (counter "svfg.patch_dirty_fns") n_dirty);
    Obs.Metrics.(add (counter "svfg.patch_dirty_objs") (Iset.cardinal dobjs));
    Obs.Metrics.(add (counter "svfg.patch_removed_edges") n_removed);
    Obs.Metrics.(add (counter "svfg.patch_added_edges") n_added);
    Ok
      ( t,
        {
          ps_dirty_fns = n_dirty;
          ps_dirty_objs = Iset.cardinal dobjs;
          ps_removed = n_removed;
          ps_added = n_added;
        } )
  end

let pp_stats ppf t =
  Format.fprintf ppf "svfg: %d nodes, %d edges (%d thread-aware)" (n_nodes t) (n_edges t)
    t.thread_edges
