open Fsam_dsa
open Fsam_ir
module A = Fsam_andersen.Solver
module Modref = Fsam_andersen.Modref
module Mta = Fsam_mta
module Obs = Fsam_obs

type node =
  | Stmt_node of int
  | Formal_in of int * int
  | Formal_out of int * int
  | Call_chi of int * int

type config = {
  thread_aware : bool;
  use_interleaving : bool;
  use_value_flow : bool;
  use_lock : bool;
}

let default_config =
  { thread_aware = true; use_interleaving = true; use_value_flow = true; use_lock = true }

(* Provenance edge kinds (recorded only when a recorder is attached). *)
let k_oblivious = 0
let k_fork_bypass = 1
let k_join = 2
let k_thread_vf = 3

type t = {
  prog : Prog.t;
  nodes : node Vec.t;
  index : (node, int) Hashtbl.t;
  preds : (int * int) list Vec.t;
  succs : (int * int) list Vec.t;
  edge_set : (int * int * int, unit) Hashtbl.t; (* (src, obj, dst) *)
  mutable thread_edges : int;
  racy : (int, Iset.t) Hashtbl.t; (* store gid -> objects with interfering MHP pairs *)
  ekind : (int * int * int, int) Hashtbl.t; (* non-oblivious kinds, prov only *)
  mutable record_prov : Fsam_prov.t option;
}

let n_nodes t = Vec.length t.nodes
let node t i = Vec.get t.nodes i
let node_id t n = Hashtbl.find_opt t.index n
let o_preds t i = Vec.get t.preds i
let o_succs t i = Vec.get t.succs i
let n_edges t = Hashtbl.length t.edge_set
let n_thread_aware_edges t = t.thread_edges
let prog t = t.prog
let iter_nodes t f = Vec.iteri (fun i n -> f i n) t.nodes

let intern t n =
  match Hashtbl.find_opt t.index n with
  | Some i -> i
  | None ->
    let i = Vec.push t.nodes n in
    ignore (Vec.push t.preds []);
    ignore (Vec.push t.succs []);
    Hashtbl.replace t.index n i;
    i

let add_edge ?(kind = 0) t src obj dst =
  if not (Hashtbl.mem t.edge_set (src, obj, dst)) then begin
    Hashtbl.replace t.edge_set (src, obj, dst) ();
    (match t.record_prov with
    | Some _ -> if kind <> k_oblivious then Hashtbl.replace t.ekind (src, obj, dst) kind
    | None -> ());
    Vec.set t.preds dst ((obj, src) :: Vec.get t.preds dst);
    Vec.set t.succs src ((obj, dst) :: Vec.get t.succs src)
  end

let has_edge t src obj dst = Hashtbl.mem t.edge_set (src, obj, dst)

let edge_kind t ~src ~obj ~dst =
  Option.value ~default:k_oblivious (Hashtbl.find_opt t.ekind (src, obj, dst))

(* ------------------------------------------------------------------------ *)
(* Thread-oblivious construction: per-(function, object) sparse
   reaching-definitions over the function's CFG.                             *)
(* ------------------------------------------------------------------------ *)

(* What a handled join (or symmetric-loop exit) makes visible: per gid, the
   joined threads' (fork gid, start fn, start-fn mods). *)
let join_info_tbl tm mr =
  let tbl : (int, (int * int * Iset.t) list) Hashtbl.t = Hashtbl.create 16 in
  for iid = 0 to Mta.Threads.n_insts tm - 1 do
    match Mta.Threads.join_kills tm iid with
    | [] -> ()
    | kills ->
      let gid = (Mta.Threads.inst tm iid).Mta.Threads.i_gid in
      let cur = ref (Option.value ~default:[] (Hashtbl.find_opt tbl gid)) in
      List.iter
        (fun tid ->
          match Mta.Threads.fork_gid_of tm tid with
          | None -> ()
          | Some fg ->
            List.iter
              (fun sf ->
                if not (List.exists (fun (fg', sf', _) -> fg' = fg && sf' = sf) !cur)
                then cur := (fg, sf, Modref.mod_of mr sf) :: !cur)
              (Mta.Threads.start_fns tm tid))
        kills;
      Hashtbl.replace tbl gid !cur
  done;
  tbl

(* Per-(function, object) sparse reaching-definitions.

   The data-flow state at a program point is a set of channels of def nodes:
   channel 0 holds the ordinary reaching defs; one extra channel per fork
   statement of the function holds the {e bypass} defs — values that reached
   the fork and may still be current because the spawnee "may be executed
   nondeterministically later" (paper §3.2 step 2). A fork's callsite chi is
   {e strong} (sourced from the spawnee's formal-out only) and the pre-fork
   defs move to the fork's bypass channel; a handled join injects the
   spawnee's formal-out into the ordinary channel and kills the matching
   bypass channel — this reproduces both the fork-bypass edge s1 ↪ s2 and
   the join edge s4 ↪ s3 of Figure 6 {e and} the strong-update-through-join
   precision of Figure 1(c), while defs between fork and join still flow
   past the join (s2 ↪ s3). *)
let build_oblivious t ast mr icfg join_info =
  let prog = t.prog in
  ignore icfg;
  let record = t.record_prov <> None in
  (* formal-out nodes injected by a handled join: edges sourced from them
     carry the "join" kind in provenance mode *)
  let join_src : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  Prog.iter_funcs prog (fun f ->
      let fid = f.Func.fid in
      let objs = Iset.union (Modref.mod_of mr fid) (Modref.ref_of mr fid) in
      let n = Func.n_stmts f in
      (* channels: 0 = ordinary defs, 1 + k = bypass of the k-th local fork *)
      let fork_channel = Hashtbl.create 4 in
      let n_forks = ref 0 in
      Func.iter_stmts f (fun i s ->
          match s with
          | Stmt.Fork _ ->
            incr n_forks;
            Hashtbl.replace fork_channel (Prog.gid prog ~fid ~idx:i) !n_forks
          | _ -> ());
      let nchan = 1 + !n_forks in
      Iset.iter
        (fun o ->
          let out = Array.make n [||] in
          let empty_state = Array.make nchan Iset.empty in
          let formal_in = intern t (Formal_in (fid, o)) in
          let queue = Queue.create () in
          let queued = Bitvec.create ~capacity:n () in
          let push i = if Bitvec.set_if_unset queued i then Queue.add i queue in
          push 0;
          while not (Queue.is_empty queue) do
            let i = Queue.pop queue in
            Bitvec.clear queued i;
            let in_state = Array.copy empty_state in
            List.iter
              (fun p ->
                if out.(p) <> [||] then
                  Array.iteri (fun c s -> in_state.(c) <- Iset.union in_state.(c) s) out.(p))
              f.Func.pred.(i);
            if i = 0 then in_state.(0) <- Iset.add formal_in in_state.(0);
            let gid = Prog.gid prog ~fid ~idx:i in
            let all_defs = Array.fold_left Iset.union Iset.empty in_state in
            let kind_of =
              if not record then fun _ -> k_oblivious
              else begin
                let bypass = ref Iset.empty in
                for c = 1 to nchan - 1 do
                  bypass := Iset.union !bypass in_state.(c)
                done;
                let bp = !bypass in
                fun d ->
                  if Hashtbl.mem join_src d then k_join
                  else if Iset.mem d bp then k_fork_bypass
                  else k_oblivious
              end
            in
            let link_all node_id =
              Iset.iter (fun d -> add_edge ~kind:(kind_of d) t d o node_id) all_defs
            in
            let collapse_to node_id =
              (* all channels absorbed into one def node *)
              link_all node_id;
              let st = Array.copy empty_state in
              st.(0) <- Iset.singleton node_id;
              st
            in
            let new_state =
              match Func.stmt f i with
              | Stmt.Load { src; _ } when Iset.mem o (A.pt_var ast src) ->
                link_all (intern t (Stmt_node gid));
                in_state
              | Stmt.Store { dst; _ } when Iset.mem o (A.pt_var ast dst) ->
                collapse_to (intern t (Stmt_node gid))
              | (Stmt.Call _ | Stmt.Fork _) as s -> (
                let callees = A.callees ast ~fid ~idx:i in
                let relevant g =
                  Iset.mem o (Modref.mod_of mr g) || Iset.mem o (Modref.ref_of mr g)
                in
                List.iter
                  (fun g ->
                    if relevant g then
                      Iset.iter
                        (fun d -> add_edge t d o (intern t (Formal_in (g, o))))
                        all_defs)
                  callees;
                let mods = List.filter (fun g -> Iset.mem o (Modref.mod_of mr g)) callees in
                let is_fork = match s with Stmt.Fork _ -> true | _ -> false in
                let after_call =
                  if mods = [] then in_state
                  else begin
                    let chi = intern t (Call_chi (gid, o)) in
                    List.iter
                      (fun g -> add_edge t (intern t (Formal_out (g, o))) o chi)
                      mods;
                    if is_fork then begin
                      (* strong fork chi; pre-fork defs move to the fork's
                         bypass channel *)
                      let st = Array.copy empty_state in
                      st.(0) <- Iset.singleton chi;
                      (match Hashtbl.find_opt fork_channel gid with
                      | Some c -> st.(c) <- all_defs
                      | None -> ());
                      st
                    end
                    else begin
                      (* synchronous call: the chi absorbs every channel; the
                         old value passes around only when some callee may
                         leave the object untouched *)
                      if List.exists (fun g -> not (Iset.mem o (Modref.mod_of mr g))) callees
                      then link_all chi;
                      let st = Array.copy empty_state in
                      st.(0) <- Iset.singleton chi;
                      st
                    end
                  end
                in
                (* a fork also writes the thread object into the handle *)
                match s with
                | Stmt.Fork { handle = Some h; _ } when Iset.mem o (A.pt_var ast h) ->
                  let nd = intern t (Stmt_node gid) in
                  Array.iter (fun ch -> Iset.iter (fun d -> add_edge t d o nd) ch) after_call;
                  let st = Array.copy empty_state in
                  st.(0) <- Iset.singleton nd;
                  st
                | _ -> after_call)
              | Stmt.Return _ when Iset.mem o (Modref.mod_of mr fid) ->
                link_all (intern t (Formal_out (fid, o)));
                in_state
              | _ -> (
                (* handled join or symmetric loop exit (paper §3.2 step 3):
                   inject the spawnees' formal-outs; kill matching bypasses *)
                match Hashtbl.find_opt join_info gid with
                | Some infos ->
                  let st = Array.copy in_state in
                  List.iter
                    (fun (fg, sf, mods) ->
                      if Iset.mem o mods then begin
                        let fo = intern t (Formal_out (sf, o)) in
                        if record then Hashtbl.replace join_src fo ();
                        st.(0) <- Iset.add fo st.(0)
                      end;
                      match Hashtbl.find_opt fork_channel fg with
                      | Some c -> st.(c) <- Iset.empty
                      | None -> ())
                    infos;
                  st
                | None -> in_state)
            in
            let changed =
              out.(i) = [||]
              ||
              let old = out.(i) in
              let rec differs c =
                c < nchan && ((not (Iset.equal new_state.(c) old.(c))) || differs (c + 1))
              in
              differs 0
            in
            if changed then begin
              out.(i) <- new_state;
              List.iter push f.Func.succ.(i)
            end
          done)
        objs)

(* ------------------------------------------------------------------------ *)
(* Thread-aware edges: [THREAD-VF] with the lock filter.

   Pair discovery is a pure function of the thread-oblivious snapshot and
   the mta indexes, so it fans out per object over [Fsam_par.run_chunks]:
   each chunk owns a contiguous slice of the sorted object list, memoises
   queries in chunk-local tables, and returns its edge / racy-mark events
   in discovery order plus its work tallies. Events are applied serially in
   chunk order and the tallies flushed to the metrics registry afterwards —
   the edge set, racy sets and counters are identical for every [jobs]
   value.                                                                    *)
(* ------------------------------------------------------------------------ *)

(* Span heads and tails (Definitions 4 and 5), per (span, object), against
   the thread-oblivious def-use edges built above. *)
type span_info = { hd : (int, unit) Hashtbl.t; tl : (int, unit) Hashtbl.t }

(* Chunk-local discovery state. Chunks must not touch [Obs.Metrics] (not
   domain-safe), so the work tallies ride back with the chunk result. *)
type chunk_res = {
  mhp_stats : Mta.Mhp.stats;
  lk_cache : Mta.Locks.cache;
  mutable considered : int;
  mutable skipped_stmt : int;
  mutable lock_filtered : int;
  (* (obj, store gid, access gid, unprotected) in discovery order *)
  mutable events : (int * int * int * bool) list;
  (* chunk-local pair-verdict recorder, absorbed in chunk order *)
  c_prov : Fsam_prov.t option;
}

let build_thread_aware t config ~jobs ast tm mhp lk pcg =
  let prog = t.prog in
  let record = t.record_prov <> None in
  let tbl_add tbl k v =
    Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  (* Index stores and accesses per object, recording each access's points-to
     set once — the only [A.pt_var] calls of the phase. (Union-find lookups
     path-compress, so they must not run inside the parallel chunks; the
     table also hoists the repeated per-member lookups out of the span
     head/tail computation.) *)
  let stores_of : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let accesses_of : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let pts_of_gid : (int, Iset.t) Hashtbl.t = Hashtbl.create 256 in
  Prog.iter_stmts prog (fun gid _ s ->
      match s with
      | Stmt.Load { src; _ } ->
        let pts = A.pt_var ast src in
        Hashtbl.replace pts_of_gid gid pts;
        Iset.iter (fun o -> tbl_add accesses_of o gid) pts
      | Stmt.Store { dst; _ } ->
        let pts = A.pt_var ast dst in
        Hashtbl.replace pts_of_gid gid pts;
        Iset.iter
          (fun o ->
            tbl_add accesses_of o gid;
            tbl_add stores_of o gid)
          pts
      | _ -> ());
  let pts_at gid = Option.value ~default:Iset.empty (Hashtbl.find_opt pts_of_gid gid) in
  (* Gid-level per-object index of the thread-oblivious def-use snapshot.
     Definitions 4/5 refer to the def-use chains available when the lock
     analysis runs — edges added by [THREAD-VF] itself must not influence
     the heads/tails — so the index is taken before any thread-aware edge
     lands; the head/tail tests then walk short adjacency lists instead of
     probing the whole edge set per candidate. *)
  let stmt_gid = Array.make (n_nodes t) (-1) in
  Vec.iteri (fun i n -> match n with Stmt_node g -> stmt_gid.(i) <- g | _ -> ()) t.nodes;
  (* The per-(object, gid) index of that snapshot lives in flat arena
     structures (packed-int-keyed open-addressing map + CSR rows) rather
     than a boxed-tuple Hashtbl of int lists: the span head/tail tests
     probe it once per candidate access, and the flat form is probed
     without tuple hashing or list chasing and is shared across the chunk
     domains as a contiguous read-only snapshot. Row-id assignment order is
     irrelevant — only row membership is ever queried. *)
  let obl_stride = Prog.n_stmts prog in
  let obl_edges = Arena.Buf.create ~capacity:4096 () in
  Hashtbl.iter
    (fun (src, o, dst) () ->
      let gs = stmt_gid.(src) and gd = stmt_gid.(dst) in
      if gs >= 0 && gd >= 0 then begin
        ignore (Arena.Buf.push obl_edges o);
        ignore (Arena.Buf.push obl_edges gs);
        ignore (Arena.Buf.push obl_edges gd)
      end)
    t.edge_set;
  let n_obl = Arena.Buf.length obl_edges / 3 in
  let obl_index ~key_gid ~val_gid =
    let rows = Arena.Intmap.create ~capacity:(max 16 n_obl) () in
    let next = ref 0 in
    let key_of e =
      (Arena.Buf.get obl_edges (3 * e) * obl_stride) + Arena.Buf.get obl_edges ((3 * e) + key_gid)
    in
    for e = 0 to n_obl - 1 do
      ignore
        (Arena.Intmap.find_or_add rows ~key:(key_of e) (fun () ->
             let r = !next in
             incr next;
             r))
    done;
    let csr =
      Arena.Csr.build ~n_rows:!next (fun emit ->
          for e = 0 to n_obl - 1 do
            emit
              ~row:(Arena.Intmap.find rows ~key:(key_of e) ~default:(-1))
              ~value:(Arena.Buf.get obl_edges ((3 * e) + val_gid))
          done)
    in
    (rows, csr)
  in
  (* pred rows are keyed by the edge head (o, gd) holding tails gs;
     succ rows by the tail (o, gs) holding heads gd *)
  let obl_pred = obl_index ~key_gid:2 ~val_gid:1 in
  let obl_succ = obl_index ~key_gid:1 ~val_gid:2 in
  let objs =
    Array.of_list (List.sort compare (Hashtbl.fold (fun o _ acc -> o :: acc) stores_of []))
  in
  (* Pure per-object discovery: runs in a chunk, touches only read-only
     shared state plus its own [res] and memo tables. *)
  let discover ~lo ~hi =
    let res =
      {
        mhp_stats = Mta.Mhp.fresh_stats ();
        lk_cache = Mta.Locks.make_cache ();
        considered = 0;
        skipped_stmt = 0;
        lock_filtered = 0;
        events = [];
        c_prov = (if record then Some (Fsam_prov.local ()) else None);
      }
    in
    (* the justification pass re-runs the lock queries with a throwaway
       cache so the flushed counters stay identical with recording off *)
    let why_cache = if record then Some (Mta.Locks.make_cache ()) else None in
    let span_accs = Hashtbl.create 64 in
    let span_cache = Hashtbl.create 64 in
    let mhp_cache = Hashtbl.create 1024 in
    let threads_of_gid = Hashtbl.create 256 in
    (* a span's load/store members with their gids and points-to sets, once
       per span visited by this chunk *)
    let span_accesses sid =
      match Hashtbl.find_opt span_accs sid with
      | Some l -> l
      | None ->
        let l =
          List.filter_map
            (fun iid ->
              let gid = (Mta.Threads.inst tm iid).Mta.Threads.i_gid in
              match Prog.stmt_at prog gid with
              | Stmt.Load _ -> Some (iid, gid, false, pts_at gid)
              | Stmt.Store _ -> Some (iid, gid, true, pts_at gid)
              | _ -> None)
            (Mta.Locks.span_members lk sid)
        in
        Hashtbl.replace span_accs sid l;
        l
    in
    let span_hd_tl sid o =
      match Hashtbl.find_opt span_cache (sid, o) with
      | Some si -> si
      | None ->
        let accs = List.filter (fun (_, _, _, pts) -> Iset.mem o pts) (span_accesses sid) in
        (* per-gid occurrence counts; instance ids are unique within the
           span, and a gid determines its instance's gid, so "another
           instance (iid', g') with an edge to/from g" reduces to: some
           def-use neighbour g' of g is accessed here — by any instance if
           g' ≠ g, by at least two if g' = g *)
        let acc_cnt = Hashtbl.create 8 and st_cnt = Hashtbl.create 8 in
        let bump tbl g =
          Hashtbl.replace tbl g (1 + Option.value ~default:0 (Hashtbl.find_opt tbl g))
        in
        List.iter
          (fun (_, g, is_store, _) ->
            bump acc_cnt g;
            if is_store then bump st_cnt g)
          accs;
        let blocked (rows, csr) cnt g =
          let row = Arena.Intmap.find rows ~key:((o * obl_stride) + g) ~default:(-1) in
          row >= 0
          && Arena.Csr.exists_row csr row (fun g' ->
                 match Hashtbl.find_opt cnt g' with
                 | None -> false
                 | Some c -> g' <> g || c >= 2)
        in
        let hd = Hashtbl.create 8 and tl = Hashtbl.create 8 in
        List.iter
          (fun (iid, g, is_store, _) ->
            if not (blocked obl_pred acc_cnt g) then Hashtbl.replace hd iid ();
            if is_store && not (blocked obl_succ st_cnt g) then Hashtbl.replace tl iid ())
          accs;
        let si = { hd; tl } in
        Hashtbl.replace span_cache (sid, o) si;
        si
    in
    (* statement-level MHP per configuration, memoised: the same (s, s')
       pair recurs once per commonly-pointed object; both backends are
       symmetric, so the key is canonicalised *)
    let stmt_mhp s s' =
      let key = if s <= s' then (s, s') else (s', s) in
      match Hashtbl.find_opt mhp_cache key with
      | Some b -> b
      | None ->
        let b =
          if config.use_interleaving then Mta.Mhp.mhp_stmt ~stats:res.mhp_stats mhp s s'
          else Mta.Pcg.mec_stmt pcg s s'
        in
        Hashtbl.replace mhp_cache key b;
        b
    in
    let inst_pairs s s' =
      if config.use_interleaving then Mta.Mhp.mhp_pairs_inst ~stats:res.mhp_stats mhp s s'
      else
        (* PCG gives no instance-level facts: all instance combinations *)
        List.concat_map
          (fun i -> List.map (fun j -> (i, j)) (Mta.Threads.insts_of_gid tm s'))
          (Mta.Threads.insts_of_gid tm s)
    in
    (* Definition 6: the instance pair cannot pass a value for o *)
    let non_interfering o (i, j) =
      List.exists
        (fun (sp, sp') ->
          let si = span_hd_tl sp o and sj = span_hd_tl sp' o in
          (not (Hashtbl.mem si.tl i)) || not (Hashtbl.mem sj.hd j))
        (Mta.Locks.common_lock ~cache:res.lk_cache lk i j)
    in
    (* Like [non_interfering] but returns the first justifying span pair and
       which half of Definition 6 held (provenance mode only). *)
    let non_interfering_why o (i, j) =
      let cache = Option.get why_cache in
      List.find_map
        (fun (sp, sp') ->
          let si = span_hd_tl sp o and sj = span_hd_tl sp' o in
          let store_not_tail = not (Hashtbl.mem si.tl i) in
          let load_not_head = not (Hashtbl.mem sj.hd j) in
          if store_not_tail || load_not_head then Some (sp, sp', store_not_tail, load_not_head)
          else None)
        (Mta.Locks.common_lock ~cache lk i j)
    in
    let record_verdict o s s' ~tag ~x ~y ~z =
      match res.c_prov with
      | Some r -> Fsam_prov.set r ~space:Fsam_prov.sp_pair ~k1:s ~k2:s' ~obj:o ~tag ~x ~y ~z
      | None -> ()
    in
    let consider_edge o s s' =
      res.considered <- res.considered + 1;
      if not (stmt_mhp s s') then begin
        res.skipped_stmt <- res.skipped_stmt + 1;
        if record then record_verdict o s s' ~tag:Fsam_prov.p_skipped_mhp ~x:0 ~y:0 ~z:0
      end
      else begin
        let pairs = inst_pairs s s' in
        let blocked = config.use_lock && pairs <> [] && List.for_all (non_interfering o) pairs in
        if blocked then begin
          res.lock_filtered <- res.lock_filtered + 1;
          if record then begin
            let i, j = List.hd pairs in
            match non_interfering_why o (i, j) with
            | Some (sp, sp', store_not_tail, load_not_head) ->
              record_verdict o s s' ~tag:Fsam_prov.p_filtered_lock ~x:i ~y:j
                ~z:(Fsam_prov.pack_spans ~sp ~sp' ~store_not_tail ~load_not_head)
            | None -> ()
          end
        end
        else begin
          (* Strong updates: an interfering pair forbids them on o — the
             interleaving may order the accesses either way — unless every
             instance pair is protected by a common lock, in which case
             mutual exclusion guarantees the partner only observes
             section-exit state (the Figure 1(e) situation: the strong
             update at the section's tail store is what keeps the earlier
             section store out of pt(c)). *)
          let unprotected =
            (not config.use_lock)
            || pairs = []
            || List.exists (fun (i, j) -> not (Mta.Locks.commonly_protected lk i j)) pairs
          in
          if record then begin
            let y, z = match pairs with (i, j) :: _ -> (i, j) | [] -> (-1, -1) in
            record_verdict o s s' ~tag:Fsam_prov.p_kept
              ~x:(if unprotected then 1 else 0)
              ~y ~z
          end;
          res.events <- (o, s, s', unprotected) :: res.events
        end
      end
    in
    (* Escape filter: an object whose accesses all come from one non-multi-
       forked thread cannot be in any MHP aliased pair — skip its whole pair
       space. (Only valid under [THREAD-VF]'s common-object requirement; the
       No-Value-Flow ablation pairs stores with every access regardless.) *)
    let gid_threads g =
      match Hashtbl.find_opt threads_of_gid g with
      | Some s -> s
      | None ->
        let s =
          List.fold_left
            (fun acc iid -> Iset.add (Mta.Threads.inst tm iid).Mta.Threads.i_thread acc)
            Iset.empty (Mta.Threads.insts_of_gid tm g)
        in
        Hashtbl.replace threads_of_gid g s;
        s
    in
    let may_escape o =
      let ts =
        List.fold_left
          (fun acc g -> Iset.union acc (gid_threads g))
          Iset.empty
          (Option.value ~default:[] (Hashtbl.find_opt accesses_of o))
      in
      match Iset.elements ts with
      | [] -> false
      | [ t' ] -> Mta.Threads.is_multi tm t'
      | _ -> true
    in
    for x = lo to hi - 1 do
      let o = objs.(x) in
      (* one timeline event per object processed: [a] = object id, [b] =
         pairs considered so far — lets the profiler attribute chunk
         imbalance to the dominant object keys *)
      Obs.Timeline.emit ~kind:Obs.Timeline.k_item ~a:o ~b:res.considered;
      let stores = Option.value ~default:[] (Hashtbl.find_opt stores_of o) in
      let escapes = lazy (may_escape o) in
      List.iter
        (fun s ->
          if config.use_value_flow then begin
            (* [THREAD-VF]: common value flow required — targets are the
               accesses of the same object *)
            if Lazy.force escapes then
              List.iter
                (fun s' -> consider_edge o s s')
                (Option.value ~default:[] (Hashtbl.find_opt accesses_of o))
          end
          else
            (* No-Value-Flow: pair with every load/store in the program *)
            Prog.iter_stmts prog (fun s' _ st ->
                match st with
                | Stmt.Load _ | Stmt.Store _ -> consider_edge o s s'
                | _ -> ()))
        stores
    done;
    res.events <- List.rev res.events;
    res
  in
  (* Cost model for the adaptive fan-out: an object's pair space is exactly
     |stores| x |targets| (its accesses under [THREAD-VF], every access
     statement in the program under the No-Value-Flow ablation) — the known
     per-object degrees, so block boundaries land between the hot objects
     instead of lumping them into one chunk. *)
  let n_access_stmts =
    let n = ref 0 in
    Prog.iter_stmts prog (fun _ _ s ->
        match s with Stmt.Load _ | Stmt.Store _ -> incr n | _ -> ());
    !n
  in
  let pair_weight x =
    let o = objs.(x) in
    let deg tbl = List.length (Option.value ~default:[] (Hashtbl.find_opt tbl o)) in
    let targets = if config.use_value_flow then deg accesses_of else n_access_stmts in
    1 + (deg stores_of * targets)
  in
  let chunks =
    Obs.Span.with_ ~name:"svfg.pair_discovery" (fun () ->
        Fsam_par.run_chunks ~label:"svfg.pairs" ~weight:pair_weight ~jobs
          ~n:(Array.length objs) discover)
  in
  (* serial in-order application of the discovered events *)
  Obs.Span.with_ ~name:"svfg.pair_apply" (fun () ->
      Obs.Timeline.with_ring ~region:"svfg.pair_apply" ~lane:0 (fun () ->
      List.iteri
        (fun ci res ->
          Obs.Timeline.emit ~kind:Obs.Timeline.k_absorb ~a:ci
            ~b:(List.length res.events);
          (match (t.record_prov, res.c_prov) with
          | Some dst, Some src -> Fsam_prov.absorb dst src
          | _ -> ());
          List.iter
            (fun (o, s, s', unprotected) ->
              let a = intern t (Stmt_node s) and b = intern t (Stmt_node s') in
              if not (has_edge t a o b) then begin
                add_edge ~kind:k_thread_vf t a o b;
                t.thread_edges <- t.thread_edges + 1
              end;
              if unprotected then begin
                let mark g =
                  Hashtbl.replace t.racy g
                    (Iset.add o (Option.value ~default:Iset.empty (Hashtbl.find_opt t.racy g)))
                in
                mark s;
                match Prog.stmt_at prog s' with Stmt.Store _ -> mark s' | _ -> ()
              end)
            res.events)
        chunks));
  (* flush the chunk-local work tallies *)
  let sum f = List.fold_left (fun n res -> n + f res) 0 chunks in
  Obs.Metrics.(add (counter "svfg.thread_pairs_considered") (sum (fun r -> r.considered)));
  Obs.Metrics.(add (counter "svfg.pairs_skipped_stmt") (sum (fun r -> r.skipped_stmt)));
  Obs.Metrics.(add (counter "svfg.lock_filtered_edges") (sum (fun r -> r.lock_filtered)));
  Obs.Metrics.(
    add (counter "mhp.summary_stmt_queries") (sum (fun r -> r.mhp_stats.Mta.Mhp.stmt_queries)));
  Obs.Metrics.(
    add (counter "mhp.summary_pair_queries") (sum (fun r -> r.mhp_stats.Mta.Mhp.pair_queries)));
  Obs.Metrics.(
    add (counter "mhp.summary_thread_checks") (sum (fun r -> r.mhp_stats.Mta.Mhp.thread_checks)));
  Obs.Metrics.(
    add (counter "mhp.summary_inst_checks") (sum (fun r -> r.mhp_stats.Mta.Mhp.inst_checks)));
  Obs.Metrics.(
    add (counter "mhp.summary_naive_checks") (sum (fun r -> r.mhp_stats.Mta.Mhp.naive_checks)));
  Obs.Metrics.(
    add (counter "locks.queries") (sum (fun r -> Mta.Locks.cache_queries r.lk_cache)));
  Obs.Metrics.(
    add (counter "locks.bitset_hits") (sum (fun r -> Mta.Locks.cache_bitset_hits r.lk_cache)));
  Obs.Metrics.(
    add (counter "locks.pair_memo_hits") (sum (fun r -> Mta.Locks.cache_memo_hits r.lk_cache)));
  Obs.Metrics.(
    add (counter "locks.span_pair_checks") (sum (fun r -> Mta.Locks.cache_span_checks r.lk_cache)));
  Obs.Metrics.(
    add
      (counter "locks.naive_span_checks")
      (sum (fun r -> Mta.Locks.cache_naive_checks r.lk_cache)))

let build ?(config = default_config) ?(jobs = 1) ?prov prog ast mr icfg tm mhp lk pcg =
  let t =
    {
      prog;
      nodes = Vec.create ();
      index = Hashtbl.create 1024;
      preds = Vec.create ();
      succs = Vec.create ();
      edge_set = Hashtbl.create 4096;
      thread_edges = 0;
      racy = Hashtbl.create 64;
      ekind = Hashtbl.create 64;
      record_prov = prov;
    }
  in
  (* mu/chi annotation material (what each join makes visible) *)
  let join_info = Obs.Span.with_ ~name:"svfg.join_info" (fun () -> join_info_tbl tm mr) in
  (* thread-oblivious def-use edge derivation (memory-SSA reaching defs) *)
  Obs.Span.with_ ~name:"svfg.oblivious" (fun () -> build_oblivious t ast mr icfg join_info);
  (* [THREAD-VF] edges, filtered by the lock analysis *)
  if config.thread_aware then
    Obs.Span.with_ ~name:"svfg.thread_aware" (fun () ->
        build_thread_aware t config ~jobs ast tm mhp lk pcg);
  Obs.Metrics.(set (gauge "svfg.nodes") (n_nodes t));
  Obs.Metrics.(set (gauge "svfg.edges") (n_edges t));
  Obs.Metrics.(set (gauge "svfg.thread_aware_edges") t.thread_edges);
  Obs.Metrics.(set (gauge "svfg.racy_stores") (Hashtbl.length t.racy));
  t

let racy_objs t gid = Option.value ~default:Iset.empty (Hashtbl.find_opt t.racy gid)

(* Canonical structural fingerprint: edge counts, every node's sorted
   outgoing (obj, dst) list, and the racy-object sets per store. Two builds
   of the same program digest equally iff they produced the same graph —
   the identity the jobs-invariance tests and the incremental engine's
   differential mode both check. *)
let digest t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "e=%d t=%d;" (n_edges t) t.thread_edges);
  for v = 0 to n_nodes t - 1 do
    List.iter
      (fun (o, s) -> Buffer.add_string buf (Printf.sprintf "%d:%d>%d;" v o s))
      (List.sort compare (o_succs t v))
  done;
  for gid = 0 to Prog.n_stmts t.prog - 1 do
    let r = racy_objs t gid in
    if not (Iset.is_empty r) then
      Buffer.add_string buf
        (Printf.sprintf "r%d=%s;" gid
           (String.concat "," (List.map string_of_int (Iset.elements r))))
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp_stats ppf t =
  Format.fprintf ppf "svfg: %d nodes, %d edges (%d thread-aware)" (n_nodes t) (n_edges t)
    t.thread_edges
