(** Deterministic domain-pool fan-out for the post-solve client analyses.

    The clients (race, leak and deadlock detection, MHP sibling seeding,
    the SVFG's [THREAD-VF] pair discovery) are read-only over prior
    analysis results and quadratic in some index range, so they parallelise
    by splitting the range into contiguous chunks, evaluating
    each chunk in its own OCaml 5 domain, and merging the per-chunk
    accumulators {e in chunk order}. Chunk boundaries are a pure function of
    [(n, jobs)], and the ordered merge makes the concatenated result
    byte-identical to the serial left-to-right traversal — callers that sort
    or fold the merged list therefore produce identical reports for every
    [jobs] value.

    Contract for the chunk function: it must not touch the process-global
    observability state ({!Fsam_obs.Span}, {!Fsam_obs.Metrics} — neither is
    domain-safe) and must only read shared analysis results. All
    [Fsam_dsa.Iset] operations are fine: the intern table is domain-safe. *)

val available_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] resolves to. *)

val resolve_jobs : int -> int
(** [resolve_jobs j] is [available_jobs ()] when [j <= 0], else [j]. *)

val run_chunks : ?label:string -> jobs:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** [run_chunks ~jobs ~n f] splits the index range [\[0, n)] into
    [k = min jobs n] contiguous chunks whose sizes differ by at most one,
    evaluates [f ~lo ~hi] on each ([lo] inclusive, [hi] exclusive), and
    returns the results in chunk order. With [jobs <= 1] (or [n <= 1]) this
    is exactly [\[f ~lo:0 ~hi:n\]] evaluated in the calling domain — the
    serial path, no domain is spawned. Otherwise chunk 0 runs in the calling
    domain while chunks 1..k-1 run in freshly spawned domains.

    After the join, per-domain wall times and the chunk imbalance are
    recorded in {!Fsam_obs.Metrics} (from the calling domain only):
    [par.<label>.jobs], [par.<label>.chunks], [par.<label>.wall_us],
    [par.<label>.max_chunk_us], [par.<label>.min_chunk_us],
    [par.<label>.imbalance_pct] ([100 * (max - min) / max], 0 when the
    region is trivially small), and per-domain attribution gauges
    [par.<label>.domain<i>.wall_us] / [.items] / [.intern_contention] /
    [.events] (the last only under profiling). [label] defaults to ["par"].

    When {!Fsam_obs.Timeline.enabled} (set by [Driver.config.profile]),
    each chunk additionally records a {!Fsam_obs.Timeline} ring: chunk
    start/stop with the index range, intern-table stripe contention, and
    whatever per-item events the chunk body [emit]s; lane-0 records one
    merge event per joined worker, and all rings are absorbed in lane
    order after the join — the basis of the per-domain trace lanes and the
    [fsam profile] utilization report. *)
