(** Deterministic domain-pool fan-out for the post-solve client analyses.

    The clients (race, leak and deadlock detection, MHP sibling seeding,
    the SVFG's [THREAD-VF] pair discovery) are read-only over prior
    analysis results and quadratic in some index range, so they parallelise
    by splitting the range into contiguous pieces, evaluating each in an
    OCaml 5 domain, and merging the per-piece accumulators {e in range
    order} — the concatenated result is byte-identical to the serial
    left-to-right traversal for every [jobs] value.

    Two scheduling strategies:

    - {!Adaptive} (the default): the range is first decomposed by {!plan}
      into weight-balanced {e blocks} — a pure function of
      [(n, weights, cutoff)], never of [jobs] or the machine, which is what
      keeps per-block state and counters identical across jobs values. When
      the estimated total weight is below the sequential {!cutoff} the
      whole range is a single block evaluated in the calling domain: no
      [Domain.spawn], no per-worker gauges, no regression on small inputs.
      Above it, [min jobs blocks] workers run a work-stealing scheduler
      over the block indices (owners pop their deque front-to-back, idle
      workers steal from the tail), so stragglers no longer serialise the
      region; which {e domain} runs a block is racy, but results are keyed
      by block index and merged in block order.
    - {!Chunked}: the legacy PR-3 decomposition, exactly [min jobs n]
      contiguous chunks of near-equal size, one per domain. Kept as the
      reference the adaptive scheduler is differentially tested against.

    Contract for the chunk function: it must not touch the process-global
    observability state ({!Fsam_obs.Span}, {!Fsam_obs.Metrics} — neither is
    domain-safe) and must only read shared analysis results. All
    [Fsam_dsa.Iset] operations are fine: the intern table is domain-safe. *)

val available_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] resolves to. *)

val resolve_jobs : int -> int
(** [resolve_jobs j] is [available_jobs ()] when [j <= 0] ([0 = auto]),
    else [j]. *)

type strategy = Chunked | Adaptive

val default_strategy : unit -> strategy
val set_default_strategy : strategy -> unit
(** Process-global default used when {!run_chunks} gets no [?strategy]
    (initially {!Adaptive}). Main domain only — meant for tests and
    harnesses, not for flipping mid-region. *)

val default_cutoff : int
(** The built-in sequential cutoff, in weight units (≈ one pairwise probe
    each): 65536. *)

val cutoff : unit -> int
val set_cutoff : int -> unit
(** The active sequential cutoff. Initialised from [FSAM_PAR_CUTOFF] when
    set (non-negative integer), else {!default_cutoff}. Ranges whose total
    weight falls below it run serially in the calling domain. *)

val chunk_bounds : n:int -> k:int -> int -> (int * int)
(** [chunk_bounds ~n ~k i] = chunk [i] of the {!Chunked} decomposition of
    [\[0, n)] into [k] near-equal contiguous chunks. *)

val plan : ?weight:(int -> int) -> ?cutoff:int -> n:int -> unit -> int array
(** The adaptive block decomposition: boundaries [b.(0) = 0 <= ... <=
    b.(blocks) = n] such that block [j] covers [\[b.(j), b.(j+1))] with
    near-equal total weight per block ([weight i] estimates item [i]'s
    cost; default 1; negative weights count as 0). Returns [\[|0; n|\]] —
    one block, the serial path — when [n <= 1] or the total weight is below
    the cutoff. The block count scales with [total/(cutoff/8)], capped at
    [min n 256]. A pure function of its arguments: callers can rely on the
    same plan on every machine and for every jobs value. *)

val run_chunks :
  ?label:string ->
  ?strategy:strategy ->
  ?weight:(int -> int) ->
  ?cutoff:int ->
  jobs:int ->
  n:int ->
  (lo:int -> hi:int -> 'a) ->
  'a list
(** [run_chunks ~jobs ~n f] evaluates [f ~lo ~hi] over a decomposition of
    [\[0, n)] ([lo] inclusive, [hi] exclusive) and returns the results in
    range order. [jobs] is passed through {!resolve_jobs} ([<= 0] means
    auto). [?weight]/[?cutoff] feed {!plan} (Adaptive only); [?strategy]
    overrides {!default_strategy}.

    Determinism: the Adaptive decomposition ignores [jobs], so the list of
    [f] invocations — and therefore anything [f] accumulates per block —
    is identical for every jobs value; the Chunked decomposition depends on
    [jobs] but each chunk is still a pure contiguous range merged in
    order. Under Adaptive, an exception from [f] is recorded, the remaining
    blocks still run, and the failure with the smallest block index is
    re-raised after the join; under Chunked the chunk-0 failure wins after
    joining the workers.

    After the join, per-domain wall times and the imbalance are recorded
    in {!Fsam_obs.Metrics} (from the calling domain only):
    [par.<label>.jobs], [.chunks] (worker lanes), [.blocks] (plan blocks),
    [.wall_us], [.max_chunk_us], [.min_chunk_us], [.imbalance_pct]
    ([100 * (max - min) / max] over per-lane walls), and per-lane
    attribution gauges [par.<label>.domain<i>.wall_us] / [.items] /
    [.intern_contention] / [.events] (the last only under profiling). The
    whole [par.<label>.domain*] family is cleared first, so a run that
    uses fewer lanes (e.g. the cutoff dropping a region to serial) leaves
    no stale gauges from a previous wider run. [label] defaults to
    ["par"].

    When {!Fsam_obs.Timeline.enabled} (set by [Driver.config.profile]),
    each lane records a {!Fsam_obs.Timeline} ring: chunk start/stop per
    executed block with its index range, intern-table stripe contention,
    and whatever per-item events the body [emit]s; lane 0 records one
    merge event per joined worker, and all rings are absorbed in lane
    order after the join — the basis of the per-domain trace lanes and the
    [fsam profile] utilization report. All chunk timing is monotonic
    ({!Fsam_obs.Monotonic}), immune to wall-clock steps. *)
