module Obs = Fsam_obs

let available_jobs () = Domain.recommended_domain_count ()
let resolve_jobs j = if j <= 0 then available_jobs () else j

(* Chunk [i] of [k] over [0, n): boundaries depend only on (n, k), so the
   decomposition — and with it the ordered merge — is deterministic. *)
let chunk_bounds ~n ~k i = (i * n / k, (i + 1) * n / k)

let record_metrics ~label ~jobs ~k ~wall_us times_us =
  let g name = Obs.Metrics.gauge (Printf.sprintf "par.%s.%s" label name) in
  Obs.Metrics.set (g "jobs") jobs;
  Obs.Metrics.set (g "chunks") k;
  Obs.Metrics.set (g "wall_us") wall_us;
  match times_us with
  | [] -> ()
  | t0 :: rest ->
    let mx = List.fold_left max t0 rest and mn = List.fold_left min t0 rest in
    Obs.Metrics.set (g "max_chunk_us") mx;
    Obs.Metrics.set (g "min_chunk_us") mn;
    Obs.Metrics.set (g "imbalance_pct") (if mx <= 0 then 0 else 100 * (mx - mn) / mx);
    List.iteri
      (fun i t -> Obs.Metrics.set (g (Printf.sprintf "domain%d.wall_us" i)) t)
      times_us

let run_chunks ?(label = "par") ~jobs ~n f =
  let jobs = if jobs <= 0 then available_jobs () else jobs in
  let k = max 1 (min jobs n) in
  let t_start = Unix.gettimeofday () in
  let timed lo hi () =
    let t0 = Unix.gettimeofday () in
    let r = f ~lo ~hi in
    (r, int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))
  in
  let results =
    if k = 1 then [ timed 0 n () ]
    else begin
      (* spawn chunks 1..k-1, keep chunk 0 for the calling domain: the
         caller does its share of the work instead of blocking in join *)
      let workers =
        List.init (k - 1) (fun i ->
            let lo, hi = chunk_bounds ~n ~k (i + 1) in
            Domain.spawn (timed lo hi))
      in
      let r0 =
        let lo, hi = chunk_bounds ~n ~k 0 in
        match timed lo hi () with
        | r -> r
        | exception e ->
          (* never leak un-joined domains; the chunk-0 failure wins *)
          List.iter (fun d -> try ignore (Domain.join d) with _ -> ()) workers;
          raise e
      in
      r0 :: List.map Domain.join workers
    end
  in
  let wall_us = int_of_float ((Unix.gettimeofday () -. t_start) *. 1e6) in
  record_metrics ~label ~jobs ~k ~wall_us (List.map snd results);
  List.map fst results
