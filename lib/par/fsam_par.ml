module Obs = Fsam_obs
module Timeline = Obs.Timeline
module Mono = Obs.Monotonic

let available_jobs () = Domain.recommended_domain_count ()
let resolve_jobs j = if j <= 0 then available_jobs () else j

type strategy = Chunked | Adaptive

let default_strategy_ref = ref Adaptive
let default_strategy () = !default_strategy_ref
let set_default_strategy s = default_strategy_ref := s

(* The sequential cutoff, in caller-supplied weight units (callers scale
   weights to roughly "one pairwise probe" each, ~50-200ns of work). The
   default is measured against Domain.spawn + join at ~100-300us per
   worker: 64k probes is several milliseconds of serial work, safely past
   the break-even point, while anything smaller loses more to spawn/merge
   than it gains — BENCH_par.json showed speedup_j4 ~= 0.14-0.23 on exactly
   those sub-millisecond regions. *)
let default_cutoff = 65536

let cutoff_ref =
  ref
    (match Sys.getenv_opt "FSAM_PAR_CUTOFF" with
    | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some c when c >= 0 -> c
      | _ -> default_cutoff)
    | None -> default_cutoff)

let cutoff () = !cutoff_ref
let set_cutoff c = cutoff_ref := max 0 c

(* Chunk [i] of [k] over [0, n): boundaries depend only on (n, k), so the
   decomposition — and with it the ordered merge — is deterministic. *)
let chunk_bounds ~n ~k i = (i * n / k, (i + 1) * n / k)

(* Upper bound on adaptive blocks: enough granularity for stealing to level
   any imbalance at realistic core counts, small enough that per-block
   bookkeeping (result slot, ring events, chunk-local memo tables) stays
   negligible. A constant — the decomposition must not depend on the
   machine. *)
let max_blocks = 256

(* Adaptive decomposition: weight-balanced contiguous blocks over [0, n),
   a pure function of (n, weights, cutoff) and NOTHING else — not [jobs],
   not the core count. Every jobs value therefore evaluates the same
   [f ~lo ~hi] calls on the same ranges, which is what keeps per-block memo
   caches, counters and results byte-identical across jobs; parallelism
   only changes which domain runs a block. Below the cutoff the whole range
   is one block: the caller stays on the serial no-spawn path. *)
let plan ?(weight = fun _ -> 1) ?cutoff:co ~n () =
  let co = match co with Some c -> max 0 c | None -> !cutoff_ref in
  if n <= 1 then [| 0; n |]
  else begin
    let prefix = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      prefix.(i + 1) <- prefix.(i) + max 0 (weight i)
    done;
    let w_total = prefix.(n) in
    if w_total < co then [| 0; n |]
    else begin
      (* block target ~ cutoff/8: the smallest parallel-worthy region still
         splits 8 ways, and bigger regions cap at [max_blocks] blocks *)
      let target = max 1 (co / 8) in
      let b = max 1 (min (min n max_blocks) (w_total / target)) in
      let bounds = Array.make (b + 1) 0 in
      bounds.(b) <- n;
      let i = ref 0 in
      for j = 1 to b - 1 do
        let t = j * w_total / b in
        while prefix.(!i) < t do
          incr i
        done;
        bounds.(j) <- !i
      done;
      bounds
    end
  end

type chunk_obs = {
  c_wall_us : int;
  c_items : int;
  c_contention : int;
  c_ring : Timeline.ring option;
}

let record_metrics ~label ~jobs ~k ~blocks ~wall_us chunks =
  let g name = Obs.Metrics.gauge (Printf.sprintf "par.%s.%s" label name) in
  (* a previous run of this region may have used more lanes: drop the whole
     per-domain family first so dead lanes' gauges don't linger *)
  Obs.Metrics.remove_matching
    (String.starts_with ~prefix:(Printf.sprintf "par.%s.domain" label));
  Obs.Metrics.set (g "jobs") jobs;
  Obs.Metrics.set (g "chunks") k;
  Obs.Metrics.set (g "blocks") blocks;
  Obs.Metrics.set (g "wall_us") wall_us;
  match chunks with
  | [] -> ()
  | c0 :: rest ->
    let mx = List.fold_left (fun a c -> max a c.c_wall_us) c0.c_wall_us rest
    and mn = List.fold_left (fun a c -> min a c.c_wall_us) c0.c_wall_us rest in
    Obs.Metrics.set (g "max_chunk_us") mx;
    Obs.Metrics.set (g "min_chunk_us") mn;
    Obs.Metrics.set (g "imbalance_pct") (if mx <= 0 then 0 else 100 * (mx - mn) / mx);
    (* per-domain gauges: imbalance is attributable, not just measured *)
    List.iteri
      (fun i c ->
        let gd name = g (Printf.sprintf "domain%d.%s" i name) in
        Obs.Metrics.set (gd "wall_us") c.c_wall_us;
        Obs.Metrics.set (gd "items") c.c_items;
        Obs.Metrics.set (gd "intern_contention") c.c_contention;
        match c.c_ring with
        | Some r -> Obs.Metrics.set (gd "events") (Timeline.n_recorded r)
        | None -> ())
      chunks

(* Merge events on lane 0, then absorb all rings in lane order so the
   collected timeline is deterministic; the joins happened-before this
   point, so worker rings are safely readable. *)
let finish_obs ~label ~jobs ~k ~blocks ~wall_us obs =
  (match obs with
  | { c_ring = Some r0; _ } :: rest ->
    List.iteri
      (fun i c -> Timeline.record r0 ~kind:Timeline.k_merge ~a:(i + 1) ~b:c.c_wall_us)
      rest
  | _ -> ());
  List.iter (fun c -> match c.c_ring with Some r -> Timeline.absorb r | None -> ()) obs;
  record_metrics ~label ~jobs ~k ~blocks ~wall_us obs

(* -- legacy chunked execution ---------------------------------------------- *)

(* One contiguous chunk per lane, k = min jobs n: the PR-3 semantics, kept
   as the reference implementation the adaptive scheduler is differentially
   tested against (and for callers that want the decomposition tied to the
   jobs value). *)
let run_chunked ~label ~jobs ~n f =
  let k = max 1 (min jobs n) in
  let profiling = Timeline.enabled () in
  let t_start = Mono.now_us () in
  (* Each chunk owns a fresh ring installed as its domain's current ring:
     chunk boundaries and intern-table contention are recorded here, and
     analysis code inside [f] adds per-item events via [Timeline.emit]. *)
  let timed lane lo hi () =
    let ring =
      if profiling then Some (Timeline.create_ring ~region:label ~lane ()) else None
    in
    Timeline.set_current ring;
    (match ring with
    | Some r -> Timeline.record r ~kind:Timeline.k_chunk_start ~a:lo ~b:hi
    | None -> ());
    let c0 = Fsam_dsa.Iset.intern_contention () in
    let t0 = Mono.now_us () in
    Fun.protect
      ~finally:(fun () -> Timeline.set_current None)
      (fun () ->
        let r = f ~lo ~hi in
        let wall_us = Mono.elapsed_us ~since_us:t0 in
        let dc = Fsam_dsa.Iset.intern_contention () - c0 in
        (match ring with
        | Some rg ->
          if dc > 0 then Timeline.record rg ~kind:Timeline.k_contention ~a:dc ~b:0;
          Timeline.record rg ~kind:Timeline.k_chunk_stop ~a:(hi - lo) ~b:dc
        | None -> ());
        (r, { c_wall_us = wall_us; c_items = hi - lo; c_contention = dc; c_ring = ring }))
  in
  let results =
    if k = 1 then [ timed 0 0 n () ]
    else begin
      (* spawn chunks 1..k-1, keep chunk 0 for the calling domain: the
         caller does its share of the work instead of blocking in join *)
      let workers =
        List.init (k - 1) (fun i ->
            let lo, hi = chunk_bounds ~n ~k (i + 1) in
            Domain.spawn (timed (i + 1) lo hi))
      in
      let r0 =
        let lo, hi = chunk_bounds ~n ~k 0 in
        match timed 0 lo hi () with
        | r -> r
        | exception e ->
          (* never leak un-joined domains; the chunk-0 failure wins *)
          List.iter (fun d -> try ignore (Domain.join d) with _ -> ()) workers;
          raise e
      in
      r0 :: List.map Domain.join workers
    end
  in
  let wall_us = Mono.elapsed_us ~since_us:t_start in
  finish_obs ~label ~jobs ~k ~blocks:k ~wall_us (List.map snd results);
  List.map fst results

(* -- adaptive execution: work-stealing over the planned blocks ------------- *)

(* Each worker owns a deque of contiguous BLOCK indices packed into one
   atomic int as (lo lsl 20) lor hi. The owner pops from the lo end, a
   thief from the hi end; both go through compare_and_set on the packed
   word, and since ranges only ever shrink there is no ABA. Which domain
   runs a block is racy — everything keyed by block index (results, ring
   events per block, memo caches inside [f]) is not. *)
let pack lo hi = (lo lsl 20) lor hi
let range v = (v lsr 20, v land 0xFFFFF)

let rec pop_own dq =
  let v = Atomic.get dq in
  let lo, hi = range v in
  if lo >= hi then None
  else if Atomic.compare_and_set dq v (pack (lo + 1) hi) then Some lo
  else pop_own dq

let rec pop_steal dq =
  let v = Atomic.get dq in
  let lo, hi = range v in
  if lo >= hi then None
  else if Atomic.compare_and_set dq v (pack lo (hi - 1)) then Some (hi - 1)
  else pop_steal dq

let run_blocks ~label ~jobs ~bounds f =
  let nb = Array.length bounds - 1 in
  let k = max 1 (min jobs nb) in
  let profiling = Timeline.enabled () in
  let t_start = Mono.now_us () in
  let results = Array.make nb None in
  let errors = Array.make nb None in
  let deques =
    Array.init k (fun w ->
        let lo, hi = chunk_bounds ~n:nb ~k w in
        Atomic.make (pack lo hi))
  in
  (* Worker w: drain the own deque front-to-back (preserving the serial
     block order for cache locality), then scan the others round-robin and
     steal from the tail. Blocks are only ever removed, so a full empty
     scan means the region is drained. A block that raises records its
     exception and the worker moves on — every block still runs exactly
     once, and the failure of the smallest block index is re-raised after
     the join (deterministic, like the serial traversal's first failure). *)
  let worker w () =
    let ring =
      if profiling then Some (Timeline.create_ring ~region:label ~lane:w ()) else None
    in
    Timeline.set_current ring;
    let c0 = Fsam_dsa.Iset.intern_contention () in
    let t0 = Mono.now_us () in
    let items = ref 0 in
    let run_block b =
      let lo = bounds.(b) and hi = bounds.(b + 1) in
      (match ring with
      | Some r -> Timeline.record r ~kind:Timeline.k_chunk_start ~a:lo ~b:hi
      | None -> ());
      (match f ~lo ~hi with
      | r -> results.(b) <- Some r
      | exception e -> errors.(b) <- Some e);
      items := !items + (hi - lo);
      match ring with
      | Some r -> Timeline.record r ~kind:Timeline.k_chunk_stop ~a:(hi - lo) ~b:0
      | None -> ()
    in
    Fun.protect
      ~finally:(fun () -> Timeline.set_current None)
      (fun () ->
        let rec own () =
          match pop_own deques.(w) with
          | Some b ->
            run_block b;
            own ()
          | None -> rob 1
        and rob off =
          if off < k then
            match pop_steal deques.((w + off) mod k) with
            | Some b ->
              run_block b;
              own ()
            | None -> rob (off + 1)
        in
        own ();
        let dc = Fsam_dsa.Iset.intern_contention () - c0 in
        (match ring with
        | Some r ->
          if dc > 0 then Timeline.record r ~kind:Timeline.k_contention ~a:dc ~b:0;
          (* trailing stop carries the lane's contention; items already
             summed from the per-block stops *)
          Timeline.record r ~kind:Timeline.k_chunk_stop ~a:0 ~b:dc
        | None -> ());
        {
          c_wall_us = Mono.elapsed_us ~since_us:t0;
          c_items = !items;
          c_contention = dc;
          c_ring = ring;
        })
  in
  let obs =
    if k = 1 then [ worker 0 () ]
    else begin
      let domains = List.init (k - 1) (fun i -> Domain.spawn (worker (i + 1))) in
      let o0 =
        match worker 0 () with
        | o -> o
        | exception e ->
          (* worker bodies trap [f]'s exceptions per block; anything that
             escapes here is infrastructure failure — join and re-raise *)
          List.iter (fun d -> try ignore (Domain.join d) with _ -> ()) domains;
          raise e
      in
      o0 :: List.map Domain.join domains
    end
  in
  let wall_us = Mono.elapsed_us ~since_us:t_start in
  finish_obs ~label ~jobs ~k ~blocks:nb ~wall_us obs;
  Array.iter (function Some e -> raise e | None -> ()) errors;
  List.init nb (fun b -> Option.get results.(b))

let run_chunks ?(label = "par") ?strategy ?weight ?cutoff ~jobs ~n f =
  let jobs = resolve_jobs jobs in
  let strategy = match strategy with Some s -> s | None -> !default_strategy_ref in
  match strategy with
  | Chunked -> run_chunked ~label ~jobs ~n f
  | Adaptive ->
    let bounds = plan ?weight ?cutoff ~n () in
    run_blocks ~label ~jobs ~bounds f
