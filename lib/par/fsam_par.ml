module Obs = Fsam_obs
module Timeline = Obs.Timeline

let available_jobs () = Domain.recommended_domain_count ()
let resolve_jobs j = if j <= 0 then available_jobs () else j

(* Chunk [i] of [k] over [0, n): boundaries depend only on (n, k), so the
   decomposition — and with it the ordered merge — is deterministic. *)
let chunk_bounds ~n ~k i = (i * n / k, (i + 1) * n / k)

type chunk_obs = {
  c_wall_us : int;
  c_items : int;
  c_contention : int;
  c_ring : Timeline.ring option;
}

let record_metrics ~label ~jobs ~k ~wall_us chunks =
  let g name = Obs.Metrics.gauge (Printf.sprintf "par.%s.%s" label name) in
  Obs.Metrics.set (g "jobs") jobs;
  Obs.Metrics.set (g "chunks") k;
  Obs.Metrics.set (g "wall_us") wall_us;
  match chunks with
  | [] -> ()
  | c0 :: rest ->
    let mx = List.fold_left (fun a c -> max a c.c_wall_us) c0.c_wall_us rest
    and mn = List.fold_left (fun a c -> min a c.c_wall_us) c0.c_wall_us rest in
    Obs.Metrics.set (g "max_chunk_us") mx;
    Obs.Metrics.set (g "min_chunk_us") mn;
    Obs.Metrics.set (g "imbalance_pct") (if mx <= 0 then 0 else 100 * (mx - mn) / mx);
    (* per-domain gauges: imbalance is attributable, not just measured *)
    List.iteri
      (fun i c ->
        let gd name = g (Printf.sprintf "domain%d.%s" i name) in
        Obs.Metrics.set (gd "wall_us") c.c_wall_us;
        Obs.Metrics.set (gd "items") c.c_items;
        Obs.Metrics.set (gd "intern_contention") c.c_contention;
        match c.c_ring with
        | Some r -> Obs.Metrics.set (gd "events") (Timeline.n_recorded r)
        | None -> ())
      chunks

let run_chunks ?(label = "par") ~jobs ~n f =
  let jobs = if jobs <= 0 then available_jobs () else jobs in
  let k = max 1 (min jobs n) in
  let profiling = Timeline.enabled () in
  let t_start = Unix.gettimeofday () in
  (* Each chunk owns a fresh ring installed as its domain's current ring:
     chunk boundaries and intern-table contention are recorded here, and
     analysis code inside [f] adds per-item events via [Timeline.emit]. *)
  let timed lane lo hi () =
    let ring =
      if profiling then Some (Timeline.create_ring ~region:label ~lane ()) else None
    in
    Timeline.set_current ring;
    (match ring with
    | Some r -> Timeline.record r ~kind:Timeline.k_chunk_start ~a:lo ~b:hi
    | None -> ());
    let c0 = Fsam_dsa.Iset.intern_contention () in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> Timeline.set_current None)
      (fun () ->
        let r = f ~lo ~hi in
        let wall_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
        let dc = Fsam_dsa.Iset.intern_contention () - c0 in
        (match ring with
        | Some rg ->
          if dc > 0 then Timeline.record rg ~kind:Timeline.k_contention ~a:dc ~b:0;
          Timeline.record rg ~kind:Timeline.k_chunk_stop ~a:(hi - lo) ~b:dc
        | None -> ());
        (r, { c_wall_us = wall_us; c_items = hi - lo; c_contention = dc; c_ring = ring }))
  in
  let results =
    if k = 1 then [ timed 0 0 n () ]
    else begin
      (* spawn chunks 1..k-1, keep chunk 0 for the calling domain: the
         caller does its share of the work instead of blocking in join *)
      let workers =
        List.init (k - 1) (fun i ->
            let lo, hi = chunk_bounds ~n ~k (i + 1) in
            Domain.spawn (timed (i + 1) lo hi))
      in
      let r0 =
        let lo, hi = chunk_bounds ~n ~k 0 in
        match timed 0 lo hi () with
        | r -> r
        | exception e ->
          (* never leak un-joined domains; the chunk-0 failure wins *)
          List.iter (fun d -> try ignore (Domain.join d) with _ -> ()) workers;
          raise e
      in
      r0 :: List.map Domain.join workers
    end
  in
  let wall_us = int_of_float ((Unix.gettimeofday () -. t_start) *. 1e6) in
  let obs = List.map snd results in
  (* the joins happened-before this point: worker rings are safely readable.
     Merge events land on lane 0, then all rings are absorbed in lane
     order so the collected timeline is deterministic. *)
  (match obs with
  | { c_ring = Some r0; _ } :: rest ->
    List.iteri
      (fun i c -> Timeline.record r0 ~kind:Timeline.k_merge ~a:(i + 1) ~b:c.c_wall_us)
      rest
  | _ -> ());
  List.iter (fun c -> match c.c_ring with Some r -> Timeline.absorb r | None -> ()) obs;
  record_metrics ~label ~jobs ~k ~wall_us obs;
  List.map fst results
