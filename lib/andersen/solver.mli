open Fsam_ir

(** Andersen's inclusion-based pointer analysis — FSAM's pre-analysis
    (paper §1.2, §4.2).

    Flow- and context-insensitive. Solved with worklist difference
    propagation over a copy-edge constraint graph with online cycle
    collapsing (the wave/deep-propagation family of [Pereira & Berlin,
    CGO'09] that the paper's implementation uses). Field-sensitive: [Gep]
    constraints materialise field objects; nested fields are flattened onto
    the root object, which bounds derivations and plays the role of
    positive-weight-cycle collapsing [Pearce et al.]. The call graph is
    built on the fly: indirect call and fork targets are resolved as the
    points-to sets of their function pointers grow. *)

type t

val run : ?prov:Fsam_prov.t -> Prog.t -> t
(** [prov], when given, records one derivation reason per points-to fact
    (space [Fsam_prov.sp_avar], keyed by constraint-graph node): which
    inclusion edge, address-of, field materialisation, fork binding or
    cycle merge first introduced each target. Recording never changes
    results; without it the solver allocates nothing extra. *)

(* Warm start ------------------------------------------------------------- *)

type warm_spec = {
  ws_old : t;  (** the previous generation's solved state *)
  ws_var_map : int array;
      (** old var -> new var ([Serve.Diff]'s pairing), [-1] when unmapped *)
  ws_dirty_fids : int list;
      (** functions whose statements changed; fids must be identical across
          the two programs *)
}

val run_warm : Prog.t -> warm:warm_spec -> (t, string) result
(** Re-solve the edited program starting from the previous fixpoint:
    constraints owned by dirty functions are retracted (the constraint
    tables are rebuilt from the new program), the affected closure of the
    edit is re-solved from bottom, and every node outside it keeps its old
    points-to set verbatim. The result is byte-identical to [run] on the
    new program. [Error reason] when a precondition fails (provenance
    enabled, object-table or fork-site drift, materialised field objects);
    the caller falls back to a cold run and counts the reason. *)

(* Points-to queries ------------------------------------------------------ *)

val pt_var : t -> Stmt.var -> Fsam_dsa.Iset.t
(** Objects the top-level variable may point to. *)

val pt_obj : t -> Stmt.obj -> Fsam_dsa.Iset.t
(** Objects the cell of the given object may point to. *)

val alias_targets : t -> Stmt.var -> Stmt.var -> Fsam_dsa.Iset.t
(** The paper's [ASp] alias-target set: objects pointed to by both. *)

(* Call graph ------------------------------------------------------------- *)

val callees : t -> fid:int -> idx:int -> int list
(** Resolved callees of the [Call] or [Fork] statement at [(fid, idx)]. *)

val call_graph : t -> Fsam_graph.Digraph.t
(** Function-level call graph including fork edges (caller -> start proc). *)

val call_graph_no_fork : t -> Fsam_graph.Digraph.t
(** Call graph with plain call edges only. *)

val fork_targets : t -> int -> int list
(** Start procedures of the given fork id. *)

val join_threads : t -> fid:int -> idx:int -> int list
(** Fork ids of the abstract threads that the [Join] at [(fid, idx)] may
    join (resolved through the handle's points-to set). *)

val ret_vars : t -> int -> Stmt.var list
(** The variables returned by a function. *)

val reachable_funcs : t -> Fsam_dsa.Bitvec.t
(** Functions reachable from [main] in the call graph (incl. fork edges). *)

(* Provenance queries ----------------------------------------------------- *)

val prov_recorder : t -> Fsam_prov.t option
val prov_node_of_var : t -> Stmt.var -> int
val prov_node_of_obj : t -> Stmt.obj -> int
val prov_var_of_node : t -> int -> Stmt.var option
val prov_obj_of_node : t -> int -> Stmt.obj option

val prov_find : t -> node:int -> obj:int -> (int * int * int * int) option
(** [(tag, x, y, z)] for "why is [obj] in the points-to set of [node]" —
    looks the node up both directly and through its representative, so
    chains recorded before a cycle collapse remain resolvable. *)

(* Statistics ------------------------------------------------------------- *)

val n_solver_iterations : t -> int
val total_pts_size : t -> int
val pp_stats : Format.formatter -> t -> unit
