open Fsam_dsa
open Fsam_ir
module Obs = Fsam_obs

(* Constraint-graph nodes: top-level variables occupy ids [0, V); the cell of
   object [o] is node [V + o]. The object table grows as field objects are
   materialised, so all node-indexed state is growable. *)

type callsite = {
  cs_fid : int;
  cs_idx : int;
  cs_args : Stmt.var list;
  cs_ret : Stmt.var option;
  cs_fork : bool;
}

type t = {
  prog : Prog.t;
  nvars : int;
  prov : Fsam_prov.t option;
  uf : Uf.t;
  mutable pts : Iset.t array;
  mutable prop : Iset.t array; (* portion of pts already propagated *)
  mutable succs : Iset.t array; (* copy edges, stored on representatives *)
  loads : (int, Stmt.var list) Hashtbl.t;
  stores : (int, Stmt.var list) Hashtbl.t;
  geps : (int, (Stmt.var * string) list) Hashtbl.t;
  forks : (int, int list) Hashtbl.t; (* handle node -> fork ids *)
  icalls : (int, callsite list) Hashtbl.t;
  connected : (int * int * int, unit) Hashtbl.t; (* (cs_fid, cs_idx, callee) *)
  cg : Fsam_graph.Digraph.t; (* includes fork edges *)
  cg_nf : Fsam_graph.Digraph.t; (* plain call edges only *)
  callee_tbl : (int * int, int list ref) Hashtbl.t; (* callsite -> callees *)
  fork_tgts : int list ref array; (* fork id -> start procs *)
  ret_tbl : Stmt.var list array; (* fid -> returned vars *)
  queue : int Queue.t;
  mutable in_queue : Bitvec.t;
  mutable iterations : int;
  mutable edges_since_collapse : int;
  mutable queue_peak : int;
  mutable copy_edges : int;
  mutable collapses : int;
}

let node_of_var _t v = v
let node_of_obj t o = t.nvars + o

let ensure t n =
  let len = Array.length t.pts in
  if n >= len then begin
    let cap = max (n + 1) (2 * len) in
    let grow a init =
      let b = Array.make cap init in
      Array.blit a 0 b 0 len;
      b
    in
    t.pts <- grow t.pts Iset.empty;
    t.prop <- grow t.prop Iset.empty;
    t.succs <- grow t.succs Iset.empty
  end

let rep t n =
  ensure t n;
  Uf.find t.uf n

let push t n =
  let n = rep t n in
  if Bitvec.set_if_unset t.in_queue n then begin
    Queue.add n t.queue;
    let depth = Queue.length t.queue in
    if depth > t.queue_peak then t.queue_peak <- depth
  end

(* [rt]/[rx] are the provenance reason tag and payload for any object that
   enters [pts n] through this call; plain ints so the disabled path stays
   allocation-free. *)
let add_pts t ~rt ~rx n set =
  let n = rep t n in
  let old = t.pts.(n) in
  let u = Iset.union old set in
  if not (u == old) then begin
    t.pts.(n) <- u;
    (match t.prov with
    | Some r ->
      Iset.iter
        (fun o ->
          if not (Iset.mem o old) then
            Fsam_prov.add r ~space:Fsam_prov.sp_avar ~k1:n ~k2:0 ~obj:o ~tag:rt ~x:rx ~y:0 ~z:0)
        set
    | None -> ());
    push t n
  end

(* Append to a node-keyed constraint table. *)
let tbl_add tbl n x =
  Hashtbl.replace tbl n (x :: Option.value ~default:[] (Hashtbl.find_opt tbl n))

let add_edge t u v =
  let u = rep t u and v = rep t v in
  if u <> v && not (Iset.mem v t.succs.(u)) then begin
    t.succs.(u) <- Iset.add v t.succs.(u);
    t.edges_since_collapse <- t.edges_since_collapse + 1;
    t.copy_edges <- t.copy_edges + 1;
    (* flow everything u already knows into v *)
    add_pts t ~rt:Fsam_prov.a_copy ~rx:u v t.pts.(u)
  end

let connect t cs callee =
  let key = (cs.cs_fid, cs.cs_idx, callee) in
  if not (Hashtbl.mem t.connected key) then begin
    Hashtbl.replace t.connected key ();
    (match Hashtbl.find_opt t.callee_tbl (cs.cs_fid, cs.cs_idx) with
    | Some l -> l := callee :: !l
    | None -> Hashtbl.replace t.callee_tbl (cs.cs_fid, cs.cs_idx) (ref [ callee ]));
    Fsam_graph.Digraph.add_edge t.cg cs.cs_fid callee;
    if not cs.cs_fork then Fsam_graph.Digraph.add_edge t.cg_nf cs.cs_fid callee;
    let f = Prog.func t.prog callee in
    let rec bind args params =
      match (args, params) with
      | a :: args, p :: params ->
        add_edge t (node_of_var t a) (node_of_var t p);
        bind args params
      | _ -> ()
    in
    bind cs.cs_args f.Func.params;
    (match cs.cs_ret with
    | Some r ->
      List.iter (fun rv -> add_edge t (node_of_var t rv) (node_of_var t r)) t.ret_tbl.(callee)
    | None -> ())
  end

let fork_of_stmt t cs fork_id callee =
  connect t cs callee;
  let l = t.fork_tgts.(fork_id) in
  if not (List.mem callee !l) then l := callee :: !l

(* Online cycle collapsing over the copy-edge graph. *)
let collapse t =
  t.collapses <- t.collapses + 1;
  let merged = Obs.Metrics.counter "andersen.pwc_merged_nodes" in
  let n = Array.length t.pts in
  let g = Fsam_graph.Digraph.create ~size_hint:n () in
  for u = 0 to n - 1 do
    if Uf.find t.uf u = u then begin
      Fsam_graph.Digraph.ensure_node g u;
      Iset.iter
        (fun v ->
          let v = Uf.find t.uf v in
          if v <> u then Fsam_graph.Digraph.add_edge g u v)
        t.succs.(u)
    end
  done;
  let r = Fsam_graph.Scc.compute g in
  Array.iter
    (fun members ->
      match members with
      | [] | [ _ ] -> ()
      | first :: rest ->
        Obs.Metrics.add merged (List.length rest);
        let keep = Uf.find t.uf first in
        let merged_pts = ref t.pts.(keep) in
        let merged_succs = ref t.succs.(keep) in
        List.iter
          (fun m ->
            let m = Uf.find t.uf m in
            if m <> keep then begin
              (match t.prov with
              | Some r ->
                (* keep a bridge reason so chains recorded under the absorbed
                   node stay reachable from the surviving representative *)
                Iset.iter
                  (fun o ->
                    Fsam_prov.add r ~space:Fsam_prov.sp_avar ~k1:keep ~k2:0 ~obj:o
                      ~tag:Fsam_prov.a_merge ~x:m ~y:0 ~z:0)
                  t.pts.(m)
              | None -> ());
              merged_pts := Iset.union !merged_pts t.pts.(m);
              merged_succs := Iset.union !merged_succs t.succs.(m);
              (* move complex constraints onto the representative *)
              let move tbl =
                match Hashtbl.find_opt tbl m with
                | Some l ->
                  Hashtbl.remove tbl m;
                  List.iter (fun x -> tbl_add tbl keep x) l
                | None -> ()
              in
              move t.loads;
              move t.stores;
              move t.geps;
              move t.forks;
              move t.icalls;
              t.pts.(m) <- Iset.empty;
              t.prop.(m) <- Iset.empty;
              t.succs.(m) <- Iset.empty;
              ignore (Uf.union_to t.uf ~keep ~absorb:m)
            end)
          rest;
        t.pts.(keep) <- !merged_pts;
        (* conservatively forget propagation history of the merged node *)
        t.prop.(keep) <- Iset.empty;
        t.succs.(keep) <- Iset.remove keep !merged_succs;
        push t keep)
    r.Fsam_graph.Scc.comps;
  t.edges_since_collapse <- 0

let process t n =
  let n = rep t n in
  let delta = Iset.diff t.pts.(n) t.prop.(n) in
  if not (Iset.is_empty delta) then begin
    t.prop.(n) <- t.pts.(n);
    t.iterations <- t.iterations + 1;
    (* complex constraints *)
    (match Hashtbl.find_opt t.loads n with
    | Some dsts ->
      Iset.iter
        (fun o -> List.iter (fun p -> add_edge t (node_of_obj t o) (node_of_var t p)) dsts)
        delta
    | None -> ());
    (match Hashtbl.find_opt t.stores n with
    | Some srcs ->
      Iset.iter
        (fun o -> List.iter (fun q -> add_edge t (node_of_var t q) (node_of_obj t o)) srcs)
        delta
    | None -> ());
    (match Hashtbl.find_opt t.geps n with
    | Some gs ->
      Iset.iter
        (fun o ->
          let info = Prog.obj t.prog o in
          if not (Memobj.is_function info || Memobj.is_thread info) then
            List.iter
              (fun (p, field) ->
                let fld = Prog.field_obj t.prog ~base:o ~field in
                ensure t (node_of_obj t fld);
                add_pts t ~rt:Fsam_prov.a_gep ~rx:o (node_of_var t p) (Iset.singleton fld))
              gs)
        delta
    | None -> ());
    (match Hashtbl.find_opt t.forks n with
    | Some fork_ids ->
      Iset.iter
        (fun o ->
          List.iter
            (fun k ->
              let theta = Prog.thread_obj_of_fork t.prog k in
              add_pts t ~rt:Fsam_prov.a_fork ~rx:k (node_of_obj t o) (Iset.singleton theta))
            fork_ids)
        delta
    | None -> ());
    (match Hashtbl.find_opt t.icalls n with
    | Some css ->
      Iset.iter
        (fun o ->
          match (Prog.obj t.prog o).Memobj.kind with
          | Memobj.Func fid ->
            List.iter
              (fun cs ->
                if cs.cs_fork then begin
                  (* recover the fork id from the statement *)
                  match Func.stmt (Prog.func t.prog cs.cs_fid) cs.cs_idx with
                  | Stmt.Fork { fork_id; _ } -> fork_of_stmt t cs fork_id fid
                  | _ -> assert false
                end
                else connect t cs fid)
              css
          | _ -> ())
        delta
    | None -> ());
    (* copy edges (snapshot: Iset is persistent, so edges added during the
       complex phase above were already seeded with full pts at add time) *)
    Iset.iter (fun m -> add_pts t ~rt:Fsam_prov.a_copy ~rx:n m delta) t.succs.(n)
  end

let total_pts_size t =
  let total = ref 0 in
  Array.iteri
    (fun n s -> if Uf.find t.uf n = n then total := !total + Iset.cardinal s)
    t.pts;
  !total

let mk_state ?prov prog =
  let nvars = Prog.n_vars prog in
  let size = nvars + Prog.n_objs prog + 64 in
  let ret_tbl = Array.make (Prog.n_funcs prog) [] in
  Prog.iter_funcs prog (fun f ->
      let rets = ref [] in
      Func.iter_stmts f (fun _ s ->
          match s with Stmt.Return (Some v) -> rets := v :: !rets | _ -> ());
      ret_tbl.(f.Func.fid) <- !rets);
  let t =
    {
      prog;
      nvars;
      prov;
      uf = Uf.create size;
      pts = Array.make size Iset.empty;
      prop = Array.make size Iset.empty;
      succs = Array.make size Iset.empty;
      loads = Hashtbl.create 256;
      stores = Hashtbl.create 256;
      geps = Hashtbl.create 64;
      forks = Hashtbl.create 16;
      icalls = Hashtbl.create 64;
      connected = Hashtbl.create 64;
      cg = Fsam_graph.Digraph.create ~size_hint:(Prog.n_funcs prog) ();
      cg_nf = Fsam_graph.Digraph.create ~size_hint:(Prog.n_funcs prog) ();
      callee_tbl = Hashtbl.create 64;
      fork_tgts = Array.init (Prog.n_forks prog) (fun _ -> ref []);
      ret_tbl;
      queue = Queue.create ();
      in_queue = Bitvec.create ~capacity:size ();
      iterations = 0;
      edges_since_collapse = 0;
      queue_peak = 0;
      copy_edges = 0;
      collapses = 0;
    }
  in
  Fsam_graph.Digraph.ensure_node t.cg (Prog.n_funcs prog - 1);
  Fsam_graph.Digraph.ensure_node t.cg_nf (Prog.n_funcs prog - 1);
  t

(* Register every statement's constraints. On a warm start the simple
   constraints are no-ops for clean nodes (their preloaded pts already
   contain the seeds, so no push happens), and the complex-constraint tables
   are rebuilt from scratch — retraction of a dirty function's constraints
   is implicit in re-deriving the tables from the *new* program. *)
let add_constraints t prog =
  let prov = t.prov in
  Prog.iter_funcs prog (fun f ->
      let fid = f.Func.fid in
      Func.iter_stmts f (fun idx s ->
          match s with
          | Stmt.Addr_of { dst; obj } ->
            add_pts t ~rt:Fsam_prov.a_base
              ~rx:(match prov with Some _ -> Prog.gid prog ~fid ~idx | None -> 0)
              (node_of_var t dst) (Iset.singleton obj)
          | Stmt.Copy { dst; src } -> add_edge t (node_of_var t src) (node_of_var t dst)
          | Stmt.Phi { dst; srcs } ->
            List.iter (fun s -> add_edge t (node_of_var t s) (node_of_var t dst)) srcs
          | Stmt.Load { dst; src } -> tbl_add t.loads (node_of_var t src) dst
          | Stmt.Store { dst; src } -> tbl_add t.stores (node_of_var t dst) src
          | Stmt.Gep { dst; src; field } -> tbl_add t.geps (node_of_var t src) (dst, field)
          | Stmt.Call { target; args; ret } -> (
            let cs =
              { cs_fid = fid; cs_idx = idx; cs_args = args; cs_ret = ret; cs_fork = false }
            in
            match target with
            | Stmt.Direct f -> connect t cs f
            | Stmt.Indirect v -> tbl_add t.icalls (node_of_var t v) cs)
          | Stmt.Fork { handle; target; args; fork_id } -> (
            (match handle with
            | Some h -> tbl_add t.forks (node_of_var t h) fork_id
            | None -> ());
            let cs =
              { cs_fid = fid; cs_idx = idx; cs_args = args; cs_ret = None; cs_fork = true }
            in
            match target with
            | Stmt.Direct f -> fork_of_stmt t cs fork_id f
            | Stmt.Indirect v -> tbl_add t.icalls (node_of_var t v) cs)
          | Stmt.Return _ | Stmt.Join _ | Stmt.Lock _ | Stmt.Unlock _ | Stmt.Nop _ -> ()))

(* Fixpoint: waves of difference propagation punctuated by PWC/cycle
   collapsing passes whenever enough new copy edges accumulated. *)
let fixpoint t =
  let size = Array.length t.pts in
  let collapse_threshold = max 512 (size / 2) in
  Obs.Span.with_ ~name:"andersen.fixpoint" (fun () ->
      while not (Queue.is_empty t.queue) do
        let n = Queue.pop t.queue in
        Bitvec.clear t.in_queue n;
        process t n;
        if t.edges_since_collapse > collapse_threshold then
          Obs.Span.with_ ~name:"andersen.collapse" (fun () -> collapse t)
      done)

let flush_metrics t ~memo_hits0 ~memo_misses0 =
  Obs.Metrics.(add (counter "andersen.iterations") t.iterations);
  Obs.Metrics.(add (counter "andersen.copy_edges") t.copy_edges);
  Obs.Metrics.(add (counter "andersen.collapses") t.collapses);
  Obs.Metrics.(set_max (gauge "andersen.worklist_peak") t.queue_peak);
  let memo_hits1, memo_misses1 = Iset.union_memo_stats () in
  Obs.Metrics.(add (counter "iset.union_memo_hits") (memo_hits1 - memo_hits0));
  Obs.Metrics.(add (counter "iset.union_memo_misses") (memo_misses1 - memo_misses0));
  Obs.Metrics.(set (gauge "andersen.pts_entries") (total_pts_size t));
  Obs.Metrics.(set (gauge "andersen.objects") (Prog.n_objs t.prog))

let run ?prov prog =
  let memo_hits0, memo_misses0 = Iset.union_memo_stats () in
  let t = mk_state ?prov prog in
  Obs.Span.with_ ~name:"andersen.constraints" (fun () -> add_constraints t prog);
  fixpoint t;
  flush_metrics t ~memo_hits0 ~memo_misses0;
  t

(* Warm start ------------------------------------------------------------- *)

type warm_spec = {
  ws_old : t;  (** the previous generation's solved state *)
  ws_var_map : int array;  (** old var -> new var, [-1] when unmapped *)
  ws_dirty_fids : int list;  (** functions whose statements changed (fid-identical) *)
}

(* Re-solve the edited program starting from the previous fixpoint.

   The algorithm works by *affected closure* over the old solved state: a
   node is affected when some fact about it could have been derived through
   a constraint owned by a dirty function (so retraction may shrink it) or
   when new constraints can grow it through a complex-constraint trigger.
   Everything outside the closure keeps its old points-to set verbatim — the
   old fixpoint value is provably the new fixpoint value there — and only
   the closure is re-solved from bottom by the ordinary worklist.

   Closure roots (old space): every old variable with no counterpart in the
   new program, every variable referenced by a dirty function's old
   statements (plus its params), and the params of direct call/fork targets
   of dirty statements (their argument bindings are retracted). The closure
   then follows, over the *old* state: copy edges (which include derived
   load/store edges), load targets, stored-into / forked-into objects in the
   node's old pts, and the params/returns of indirect callees.

   Soundness of the preload: a clean node's old value can only be wrong if
   one of its (transitive) old derivations went through a retracted
   constraint — but every retracted constraint's node is a root, and every
   derivation step is covered by a closure rule, so the node would have been
   marked. Completeness: all constraints of the new program are re-added;
   clean-to-clean derived edges are replayed so later growth still flows;
   clean complex nodes with an affected output are re-enqueued ("frontier")
   so they re-derive edges into re-solved nodes. Affected nodes start empty
   and their full in-flows are regenerated, so the worklist reaches the
   least fixpoint of the new constraint system — byte-identical to cold
   (the serve differential mode certifies this on every edit).

   Returns [Error reason] when a precondition fails; the caller falls back
   to a cold run and counts the reason. *)
let run_warm prog ~warm =
  let old = warm.ws_old in
  let oldp = old.prog in
  if old.prov <> None then Error "andersen_provenance"
  else if Prog.n_funcs prog <> Prog.n_funcs oldp then Error "andersen_fn_count"
  else if Prog.n_vars oldp <> Array.length warm.ws_var_map then Error "andersen_var_map"
  else if Prog.n_objs prog <> Prog.n_objs oldp then
    (* also excludes old materialised field objects: a fresh lowering never
       has any, so differing counts mean the old run grew the object table
       in a way a cold run of the new program may renumber *)
    Error "andersen_obj_drift"
  else begin
    let objs_equal = ref true in
    Prog.iter_objs oldp (fun (o : Memobj.t) ->
        let o' = Prog.obj prog o.Memobj.id in
        if o <> o' then objs_equal := false);
    let forks_equal =
      Prog.n_forks prog = Prog.n_forks oldp
      && (let ok = ref true in
          for k = 0 to Prog.n_forks prog - 1 do
            if
              Prog.fork_site prog k <> Prog.fork_site oldp k
              || Prog.thread_obj_of_fork prog k <> Prog.thread_obj_of_fork oldp k
            then ok := false
          done;
          !ok)
    in
    if not !objs_equal then Error "andersen_obj_drift"
    else if not forks_equal then Error "andersen_fork_drift"
    else begin
      let memo_hits0, memo_misses0 = Iset.union_memo_stats () in
      let old_size = Array.length old.pts in
      let old_rep n = Uf.find old.uf n in
      (* -- affected closure over the old state -- *)
      let marked = Bitvec.create ~capacity:old_size () in
      let cq = Queue.create () in
      let mark n =
        if n >= 0 && n < old_size then begin
          let r = old_rep n in
          if Bitvec.set_if_unset marked r then Queue.add r cq
        end
      in
      let mark_var v = mark v in
      let mark_obj o = mark (old.nvars + o) in
      (* roots *)
      Array.iteri (fun v nv -> if nv = -1 then mark_var v) warm.ws_var_map;
      List.iter
        (fun fid ->
          let f = Prog.func oldp fid in
          List.iter mark_var f.Func.params;
          Func.iter_stmts f (fun _ s ->
              (match Stmt.def s with Some v -> mark_var v | None -> ());
              List.iter mark_var (Stmt.uses s);
              match s with
              | Stmt.Call { target = Stmt.Direct g; _ }
              | Stmt.Fork { target = Stmt.Direct g; _ } ->
                List.iter mark_var (Prog.func oldp g).Func.params
              | _ -> ()))
        warm.ws_dirty_fids;
      (* closure rules *)
      while not (Queue.is_empty cq) do
        let r = Queue.pop cq in
        Iset.iter mark old.succs.(r);
        (match Hashtbl.find_opt old.loads r with
        | Some dsts -> List.iter mark_var dsts
        | None -> ());
        (match Hashtbl.find_opt old.stores r with
        | Some _ -> Iset.iter mark_obj old.pts.(r)
        | None -> ());
        (match Hashtbl.find_opt old.geps r with
        | Some gs -> List.iter (fun (p, _) -> mark_var p) gs
        | None -> ());
        (match Hashtbl.find_opt old.forks r with
        | Some _ -> Iset.iter mark_obj old.pts.(r)
        | None -> ());
        match Hashtbl.find_opt old.icalls r with
        | Some css ->
          Iset.iter
            (fun o ->
              match (Prog.obj oldp o).Memobj.kind with
              | Memobj.Func fid ->
                List.iter mark_var (Prog.func oldp fid).Func.params;
                List.iter mark_var old.ret_tbl.(fid)
              | _ -> ())
            old.pts.(r);
          List.iter (fun cs -> match cs.cs_ret with Some v -> mark_var v | None -> ()) css
        | None -> ()
      done;
      let aff_old n = Bitvec.get marked (old_rep n) in
      (* -- build the new state -- *)
      let t = mk_state prog in
      let nvars_new = t.nvars in
      let n_objs = Prog.n_objs prog in
      let img n = if n < old.nvars then warm.ws_var_map.(n) else nvars_new + (n - old.nvars) in
      (* pre-union surviving merged classes so their shared value is
         preloaded once at the surviving representative *)
      for n = 0 to old.nvars + n_objs - 1 do
        let r = old_rep n in
        if r <> n && not (Bitvec.get marked r) then begin
          let ik = img r and ia = img n in
          if ik >= 0 && ia >= 0 then ignore (Uf.union_to t.uf ~keep:ik ~absorb:ia)
        end
      done;
      (* preload clean values (object ids are identical across generations,
         so the old hash-consed sets are reused verbatim) *)
      let preloaded = ref 0 in
      let preload_new x px =
        if not (aff_old px) then begin
          let x' = Uf.find t.uf x in
          if Iset.is_empty t.pts.(x') then begin
            let v = old.pts.(old_rep px) in
            t.pts.(x') <- v;
            t.prop.(x') <- v;
            incr preloaded
          end
        end
      in
      let var_inv = Array.make nvars_new (-1) in
      Array.iteri
        (fun ov nv -> if nv >= 0 && nv < nvars_new then var_inv.(nv) <- ov)
        warm.ws_var_map;
      for x = 0 to nvars_new - 1 do
        let ov = var_inv.(x) in
        if ov >= 0 then preload_new x ov
      done;
      for o = 0 to n_objs - 1 do
        preload_new (nvars_new + o) (old.nvars + o)
      done;
      (* replay clean-to-clean copy edges (including derived load/store
         edges — a clean trigger justifies them in the new program too) *)
      for u = 0 to old_size - 1 do
        if old_rep u = u && not (Bitvec.get marked u) then
          Iset.iter
            (fun v ->
              if not (aff_old v) then begin
                let iu = img u and iv = img v in
                if iu >= 0 && iv >= 0 then begin
                  let iu = Uf.find t.uf iu and iv = Uf.find t.uf iv in
                  if iu <> iv then t.succs.(iu) <- Iset.add iv t.succs.(iu)
                end
              end)
            old.succs.(u)
      done;
      (* all new-program constraints; no-op pushes on clean nodes *)
      Obs.Span.with_ ~name:"andersen.constraints" (fun () -> add_constraints t prog);
      (* clean indirect call/fork sites: either preseed their resolved
         bindings' bookkeeping, or — if any binding target was re-solved —
         re-enqueue the site so [process] re-derives the bindings *)
      let frontier = ref [] in
      let enqueue_frontier n =
        let x = img n in
        if x >= 0 then frontier := x :: !frontier
      in
      Hashtbl.iter
        (fun n css ->
          if not (Bitvec.get marked (old_rep n)) then begin
            let bind_targets_clean =
              (not
                 (Iset.exists
                    (fun o ->
                      match (Prog.obj oldp o).Memobj.kind with
                      | Memobj.Func fid ->
                        List.exists aff_old (Prog.func oldp fid).Func.params
                        || List.exists aff_old old.ret_tbl.(fid)
                      | _ -> false)
                    old.pts.(old_rep n)))
              && not
                   (List.exists
                      (fun cs ->
                        match cs.cs_ret with Some v -> aff_old v | None -> false)
                      css)
            in
            if not bind_targets_clean then enqueue_frontier n
            else
              Iset.iter
                (fun o ->
                  match (Prog.obj oldp o).Memobj.kind with
                  | Memobj.Func fid ->
                    List.iter
                      (fun cs ->
                        let key = (cs.cs_fid, cs.cs_idx, fid) in
                        if not (Hashtbl.mem t.connected key) then begin
                          Hashtbl.replace t.connected key ();
                          (match Hashtbl.find_opt t.callee_tbl (cs.cs_fid, cs.cs_idx) with
                          | Some l -> l := fid :: !l
                          | None ->
                            Hashtbl.replace t.callee_tbl (cs.cs_fid, cs.cs_idx)
                              (ref [ fid ]));
                          Fsam_graph.Digraph.add_edge t.cg cs.cs_fid fid;
                          if not cs.cs_fork then
                            Fsam_graph.Digraph.add_edge t.cg_nf cs.cs_fid fid;
                          if cs.cs_fork then begin
                            match Func.stmt (Prog.func prog cs.cs_fid) cs.cs_idx with
                            | Stmt.Fork { fork_id; _ } ->
                              let l = t.fork_tgts.(fork_id) in
                              if not (List.mem fid !l) then l := fid :: !l
                            | _ -> ()
                          end
                        end)
                      css
                  | _ -> ())
                old.pts.(old_rep n)
          end)
        old.icalls;
      (* clean complex nodes whose outputs were re-solved must re-derive
         the edges into them *)
      let check_outputs tbl outputs_affected =
        Hashtbl.iter
          (fun n x ->
            if not (Bitvec.get marked (old_rep n)) && outputs_affected n x then
              enqueue_frontier n)
          tbl
      in
      check_outputs old.loads (fun _ dsts -> List.exists aff_old dsts);
      check_outputs old.stores (fun n _ ->
          Iset.exists (fun o -> aff_old (old.nvars + o)) old.pts.(old_rep n));
      check_outputs old.geps (fun _ gs -> List.exists (fun (p, _) -> aff_old p) gs);
      check_outputs old.forks (fun n _ ->
          Iset.exists (fun o -> aff_old (old.nvars + o)) old.pts.(old_rep n));
      List.iter
        (fun x ->
          let x = rep t x in
          t.prop.(x) <- Iset.empty;
          push t x)
        !frontier;
      fixpoint t;
      Obs.Metrics.(add (counter "andersen.warm_runs") 1);
      Obs.Metrics.(set (gauge "andersen.warm_preloaded") !preloaded);
      Obs.Metrics.(set (gauge "andersen.warm_affected") (Bitvec.cardinal marked));
      flush_metrics t ~memo_hits0 ~memo_misses0;
      Ok t
    end
  end

(* Queries ----------------------------------------------------------------- *)

let pt_var t v = t.pts.(rep t (node_of_var t v))
let pt_obj t o = t.pts.(rep t (node_of_obj t o))
let alias_targets t p q = Iset.inter (pt_var t p) (pt_var t q)

(* [callees]/[fork_targets] sort so the answer is canonical: a warm start
   reseeds the callee bookkeeping in a different order than cold on-the-fly
   discovery, and downstream consumers (thread discovery, SVFG call linking)
   must not observe the difference. *)
let callees t ~fid ~idx =
  match Hashtbl.find_opt t.callee_tbl (fid, idx) with
  | Some l -> List.sort_uniq compare !l
  | None -> []

let call_graph t = t.cg
let call_graph_no_fork t = t.cg_nf
let fork_targets t k = List.sort_uniq compare !(t.fork_tgts.(k))

let join_threads t ~fid ~idx =
  match Func.stmt (Prog.func t.prog fid) idx with
  | Stmt.Join { handle } ->
    let acc = ref [] in
    Iset.iter
      (fun o ->
        Iset.iter
          (fun o' ->
            match Prog.fork_of_thread_obj t.prog o' with
            | Some k -> if not (List.mem k !acc) then acc := k :: !acc
            | None -> ())
          (pt_obj t o))
      (pt_var t handle);
    List.sort compare !acc
  | _ -> []

let ret_vars t f = t.ret_tbl.(f)

let reachable_funcs t =
  Fsam_graph.Reach.from t.cg (Prog.main_fid t.prog)

let n_solver_iterations t = t.iterations

(* Provenance queries ------------------------------------------------------ *)

let prov_recorder t = t.prov
let prov_node_of_var t v = rep t (node_of_var t v)
let prov_node_of_obj t o = rep t (node_of_obj t o)
let prov_var_of_node t n = if n < t.nvars then Some n else None
let prov_obj_of_node t n = if n >= t.nvars then Some (n - t.nvars) else None

let prov_find t ~node ~obj =
  match t.prov with
  | None -> None
  | Some r -> (
    (* reasons are keyed by the representative at record time; try the node
       itself first (pre-merge records survive), then today's rep *)
    match Fsam_prov.find r ~space:Fsam_prov.sp_avar ~k1:node ~k2:0 ~obj with
    | Some _ as res -> res
    | None ->
      let n' = rep t node in
      if n' = node then None
      else Fsam_prov.find r ~space:Fsam_prov.sp_avar ~k1:n' ~k2:0 ~obj)

let pp_stats ppf t =
  Format.fprintf ppf "andersen: %d iterations, %d pts entries, %d objects"
    t.iterations (total_pts_size t) (Prog.n_objs t.prog)
