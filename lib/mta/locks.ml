open Fsam_dsa
open Fsam_ir
module A = Fsam_andersen.Solver
module Obs = Fsam_obs

type span = { sp_lock : int; sp_members : int list }

type t = {
  spans : span array;
  of_inst : int list array;
  locksets : Bitvec.t array; (* per instance: compact lock-object ids held *)
  n_lock_objs : int;
}

type cache = {
  c_pairs : (int * int, (int * int) list) Hashtbl.t;
  mutable c_queries : int;
  mutable c_bitset_hits : int; (* answered [] by the bitset test alone *)
  mutable c_memo_hits : int;
  mutable c_span_checks : int; (* span-pair comparisons on memo misses *)
  mutable c_naive_checks : int; (* span-pair comparisons a naive scan performs *)
}

let make_cache () =
  {
    c_pairs = Hashtbl.create 256;
    c_queries = 0;
    c_bitset_hits = 0;
    c_memo_hits = 0;
    c_span_checks = 0;
    c_naive_checks = 0;
  }

let cache_queries c = c.c_queries
let cache_bitset_hits c = c.c_bitset_hits
let cache_memo_hits c = c.c_memo_hits
let cache_span_checks c = c.c_span_checks
let cache_naive_checks c = c.c_naive_checks

(* A lock pointer must-aliases a unique runtime lock when its points-to set
   is a singleton whose object represents one location: not a heap object,
   not an array element, not a thread/function object. (Stack locks of
   recursive or multi-forked code would also be excluded by the singleton
   notion of §3.4; lock objects in practice are globals.) *)
let must_lock prog ast v =
  let pts = A.pt_var ast v in
  match Iset.elements pts with
  | [ o ] ->
    let info = Prog.obj prog o in
    if
      info.Memobj.is_array || Memobj.is_heap info || Memobj.is_thread info
      || Memobj.is_function info
    then None
    else Some o
  | _ -> None

let may_release ast v lock_obj = Iset.mem lock_obj (A.pt_var ast v)

let compute prog ast tm =
  let n = Threads.n_insts tm in
  let spans = ref [] in
  (* one scratch visited-set shared by every span exploration: spans are
     typically a handful of instances, so a fresh length-n bitvec per span
     would make this phase O(spans * n_insts) in allocation alone — the
     members list tells us exactly which bits to clear between spans *)
  let set = Bitvec.create ~capacity:n () in
  for iid = 0 to n - 1 do
    let { Threads.i_gid; _ } = Threads.inst tm iid in
    match Prog.stmt_at prog i_gid with
    | Stmt.Lock l -> (
      match must_lock prog ast l with
      | None -> ()
      | Some lock_obj ->
        (* forward exploration stopping at any may-release unlock *)
        let members = ref [] in
        let stack = ref [ iid ] in
        Bitvec.set set iid;
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | i :: tl ->
            stack := tl;
            members := i :: !members;
            let { Threads.i_gid = g; _ } = Threads.inst tm i in
            let stop =
              i <> iid
              &&
              match Prog.stmt_at prog g with
              | Stmt.Unlock u -> may_release ast u lock_obj
              | _ -> false
            in
            if not stop then
              List.iter
                (fun j -> if Bitvec.set_if_unset set j then stack := j :: !stack)
                (Threads.inst_succs tm i)
        done;
        List.iter (Bitvec.clear set) !members;
        spans := { sp_lock = lock_obj; sp_members = !members } :: !spans)
    | _ -> ()
  done;
  let spans = Array.of_list (List.rev !spans) in
  let of_inst = Array.make n [] in
  Array.iteri
    (fun sid sp -> List.iter (fun i -> of_inst.(i) <- sid :: of_inst.(i)) sp.sp_members)
    spans;
  (* Compact the runtime lock objects into dense bit positions and give each
     instance the bitset of locks it holds; [common_lock]'s frequent "no
     common lock" answer then falls out of one bitwise-AND scan. Instances
     inside no span share one empty vector. *)
  let lock_id = Hashtbl.create 8 in
  Array.iter
    (fun sp ->
      if not (Hashtbl.mem lock_id sp.sp_lock) then
        Hashtbl.replace lock_id sp.sp_lock (Hashtbl.length lock_id))
    spans;
  let n_lock_objs = Hashtbl.length lock_id in
  let empty_lockset = Bitvec.create ~capacity:(max 1 n_lock_objs) () in
  let locksets =
    Array.map
      (function
        | [] -> empty_lockset
        | sids ->
          let bv = Bitvec.create ~capacity:(max 1 n_lock_objs) () in
          List.iter (fun sid -> Bitvec.set bv (Hashtbl.find lock_id spans.(sid).sp_lock)) sids;
          bv)
      of_inst
  in
  Obs.Metrics.(set (gauge "locks.spans") (Array.length spans));
  Obs.Metrics.(set (gauge "locks.lock_objs") n_lock_objs);
  { spans; of_inst; locksets; n_lock_objs }

let n_spans t = Array.length t.spans
let n_lock_objs t = t.n_lock_objs
let span_lock t sid = t.spans.(sid).sp_lock

(* Lock objects held at an instance — the lock-set half of a race witness. *)
let held_locks t i =
  List.sort_uniq compare (List.map (fun sid -> t.spans.(sid).sp_lock) t.of_inst.(i))
let span_members t sid = t.spans.(sid).sp_members
let spans_of_inst t i = t.of_inst.(i)

let commonly_protected t i j = Bitvec.intersects t.locksets.(i) t.locksets.(j)

let common_lock_pairs t i j =
  List.concat_map
    (fun si ->
      List.filter_map
        (fun sj -> if span_lock t si = span_lock t sj then Some (si, sj) else None)
        (spans_of_inst t j))
    (spans_of_inst t i)

let common_lock_naive ?stats t i j =
  (match stats with
  | Some c ->
    c.c_naive_checks <-
      c.c_naive_checks + (List.length t.of_inst.(i) * List.length t.of_inst.(j))
  | None -> ());
  common_lock_pairs t i j

let common_lock ?cache t i j =
  match cache with
  | None -> if commonly_protected t i j then common_lock_pairs t i j else []
  | Some c -> (
    c.c_queries <- c.c_queries + 1;
    c.c_naive_checks <-
      c.c_naive_checks + (List.length t.of_inst.(i) * List.length t.of_inst.(j));
    if not (commonly_protected t i j) then begin
      c.c_bitset_hits <- c.c_bitset_hits + 1;
      []
    end
    else
      match Hashtbl.find_opt c.c_pairs (i, j) with
      | Some pairs ->
        c.c_memo_hits <- c.c_memo_hits + 1;
        pairs
      | None ->
        c.c_span_checks <-
          c.c_span_checks + (List.length t.of_inst.(i) * List.length t.of_inst.(j));
        let pairs = common_lock_pairs t i j in
        Hashtbl.replace c.c_pairs (i, j) pairs;
        pairs)
