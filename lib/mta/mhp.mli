(** The flow- and context-sensitive interleaving (may-happen-in-parallel)
    analysis of paper §3.3.1, Figure 7: a forward data-flow problem over
    statement instances computing [I(t, c, s)] — the set of abstract threads
    that may run in parallel with thread [t] when it executes statement [s]
    under context [c].

    - [I-DESCENDANT]: the statement after a fork gains the spawnee and all
      of the spawnee's transitive descendants; the spawnee's entry gains its
      ancestors.
    - [I-SIBLING]: entries of sibling threads gain each other unless one
      happens before the other (Definition 2).
    - [I-JOIN]: a handled join removes its kill set.
    - [I-INTRA]/[I-CALL]/[I-RET]: facts flow along instance edges (contexts
      were already matched when the instance graph was built).

    Two instances may happen in parallel when each thread appears in the
    other's fact (or both belong to one multi-forked thread). *)

type t

val compute : ?jobs:int -> Threads.t -> t
(** [jobs] (default 1) fans the quadratic [I-SIBLING] seeding queries out
    over that many domains; the seeding order — and hence the fixpoint's
    facts and iteration count — is identical for every [jobs] value. *)

val interference : t -> int -> Fsam_dsa.Iset.t
(** [I(t,c,s)] for an instance id. *)

val mhp_inst : t -> int -> int -> bool
(** May the two statement instances happen in parallel? *)

val mhp_stmt : t -> int -> int -> bool
(** Statement-level projection: some instance pair of the two gids is MHP. *)

val mhp_pairs_inst : t -> int -> int -> (int * int) list
(** All MHP instance pairs [(iid1, iid2)] of two statement gids. *)

val threads : t -> Threads.t
val n_iterations : t -> int
val total_fact_size : t -> int
