(** The flow- and context-sensitive interleaving (may-happen-in-parallel)
    analysis of paper §3.3.1, Figure 7: a forward data-flow problem over
    statement instances computing [I(t, c, s)] — the set of abstract threads
    that may run in parallel with thread [t] when it executes statement [s]
    under context [c].

    - [I-DESCENDANT]: the statement after a fork gains the spawnee and all
      of the spawnee's transitive descendants; the spawnee's entry gains its
      ancestors.
    - [I-SIBLING]: entries of sibling threads gain each other unless one
      happens before the other (Definition 2).
    - [I-JOIN]: a handled join removes its kill set.
    - [I-INTRA]/[I-CALL]/[I-RET]: facts flow along instance edges (contexts
      were already matched when the instance graph was built).

    Two instances may happen in parallel when each thread appears in the
    other's fact (or both belong to one multi-forked thread).

    The statement-level queries run on a {e summary index} built once after
    the fixpoint: per gid, the interned set of owning threads (and its
    multi-forked subset) plus the instances grouped by thread with their
    facts unioned. Because the two membership conditions of [mhp_inst]
    constrain the two instances independently, the per-thread facts-unions
    decide statement-level MHP exactly — [mhp_stmt] is a set
    intersection/membership test and [mhp_pairs_inst] scans only the
    instances of thread pairs that already passed it. *)

type t

type stats = {
  mutable stmt_queries : int;
  mutable pair_queries : int;
  mutable thread_checks : int;
      (** per-group/per-thread probes performed by the indexed layer *)
  mutable inst_checks : int;  (** per-instance fact probes actually performed *)
  mutable naive_checks : int;
      (** instance-pair probes a full naive scan of the same queries would
          perform ([|insts g1| × |insts g2|] per query) *)
}
(** Work tallies for the query layer. Plain mutable records so parallel
    callers can count into a chunk-local instance and merge after the join
    (the process-global metrics registry is not domain-safe). *)

val fresh_stats : unit -> stats

val compute : ?jobs:int -> Threads.t -> t
(** [jobs] (default 1) fans the quadratic [I-SIBLING] seeding queries out
    over that many domains; the seeding order — and hence the fixpoint's
    facts and iteration count — is identical for every [jobs] value. *)

val interference : t -> int -> Fsam_dsa.Iset.t
(** [I(t,c,s)] for an instance id. *)

val mhp_inst : t -> int -> int -> bool
(** May the two statement instances happen in parallel? Symmetric. *)

val mhp_stmt : ?stats:stats -> t -> int -> int -> bool
(** Statement-level projection: some instance pair of the two gids is MHP.
    Symmetric; answered from the summary index without touching instances. *)

val mhp_pairs_inst : ?stats:stats -> t -> int -> int -> (int * int) list
(** All MHP instance pairs [(iid1, iid2)] of two statement gids, restricted
    to the thread pairs that pass the summary test. The pair {e set} equals
    the naive reference's; the order is unspecified but deterministic. *)

val mhp_stmt_naive : ?stats:stats -> t -> int -> int -> bool
(** Reference implementation scanning all instance pairs (short-circuiting);
    [stats] counts its [inst_checks]. For differential tests and baselines. *)

val mhp_pairs_inst_naive : ?stats:stats -> t -> int -> int -> (int * int) list
(** Reference pair enumeration over the full instance product, in
    [insts_of_gid] nesting order. *)

val witness_pair : t -> int -> int -> (int * int) option
(** First instance pair witnessing [mhp_stmt] for two statement gids (the
    head of the deterministic [mhp_pairs_inst] order); [None] when the
    statements never happen in parallel. The fork/sibling chain justifying
    the pair is recoverable through [Threads.fork_chain] and
    [Threads.happens_before]. *)

val threads : t -> Threads.t
val n_iterations : t -> int
val total_fact_size : t -> int
