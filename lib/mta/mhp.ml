open Fsam_dsa
module Obs = Fsam_obs

(* Per-thread instance group of one gid: the instances of the gid executed
   by [g_tid], and the union of their interference facts. The union is exact
   for the statement-level queries because the two membership conditions of
   [mhp_inst] constrain the two instances independently: some pair (i, j)
   with t2 ∈ I(i) and t1 ∈ I(j) exists iff t2 appears in the facts-union of
   t1's group and t1 appears in the facts-union of t2's group. *)
type group = { g_tid : int; g_insts : int list; g_facts : Iset.t }

type summary = {
  sm_own : Iset.t; (* threads executing some instance of the gid *)
  sm_own_multi : Iset.t; (* the multi-forked subset of [sm_own] *)
  sm_groups : group list;
  sm_size : int; (* total instance count of the gid *)
}

let empty_summary =
  { sm_own = Iset.empty; sm_own_multi = Iset.empty; sm_groups = []; sm_size = 0 }

type t = {
  tm : Threads.t;
  facts : Iset.t array; (* per instance: I at the statement *)
  summaries : (int, summary) Hashtbl.t; (* gid -> summary index *)
  mutable iterations : int;
}

type stats = {
  mutable stmt_queries : int;
  mutable pair_queries : int;
  mutable thread_checks : int; (* indexed layer: per-group / per-thread probes *)
  mutable inst_checks : int; (* indexed layer: per-instance fact probes *)
  mutable naive_checks : int; (* instance-pair probes a naive scan performs *)
}

let fresh_stats () =
  { stmt_queries = 0; pair_queries = 0; thread_checks = 0; inst_checks = 0; naive_checks = 0 }

let interference t i = t.facts.(i)
let threads t = t.tm
let n_iterations t = t.iterations

let total_fact_size t = Array.fold_left (fun acc s -> acc + Iset.cardinal s) 0 t.facts

(* Group the instances of every gid by thread and union their facts.
   [insts_of_gid] enumerates a deterministic order, so the group order — and
   with it the pair order of [mhp_pairs_inst] — is deterministic too. *)
let build_summaries tm facts =
  let tbl = Hashtbl.create 256 in
  let n = Threads.n_insts tm in
  for iid = 0 to n - 1 do
    let gid = (Threads.inst tm iid).Threads.i_gid in
    if not (Hashtbl.mem tbl gid) then begin
      let insts = Threads.insts_of_gid tm gid in
      let rec insert groups tid i =
        match groups with
        | [] -> [ { g_tid = tid; g_insts = [ i ]; g_facts = facts.(i) } ]
        | g :: rest when g.g_tid = tid ->
          { g with g_insts = i :: g.g_insts; g_facts = Iset.union g.g_facts facts.(i) } :: rest
        | g :: rest -> g :: insert rest tid i
      in
      let groups =
        List.fold_left (fun gs i -> insert gs (Threads.inst tm i).Threads.i_thread i) [] insts
      in
      let groups = List.map (fun g -> { g with g_insts = List.rev g.g_insts }) groups in
      let own = List.fold_left (fun s g -> Iset.add g.g_tid s) Iset.empty groups in
      let own_multi = Iset.filter (fun tid -> Threads.is_multi tm tid) own in
      Hashtbl.replace tbl gid
        { sm_own = own; sm_own_multi = own_multi; sm_groups = groups; sm_size = List.length insts }
    end
  done;
  (* counts the summaries actually (re)computed: the serve warm path reuses
     the whole summary index verbatim and adds zero here *)
  Obs.Metrics.(add (counter "mhp.summaries_computed") (Hashtbl.length tbl));
  tbl

let compute ?(jobs = 1) tm =
  let n = Threads.n_insts tm in
  let facts = Array.make n Iset.empty in
  let queue = Queue.create () in
  let queued = Bitvec.create ~capacity:n () in
  let peak = ref 0 in
  let push i =
    if Bitvec.set_if_unset queued i then begin
      Queue.add i queue;
      let depth = Queue.length queue in
      if depth > !peak then peak := depth
    end
  in
  let add i set =
    let u = Iset.union facts.(i) set in
    if not (u == facts.(i)) then begin
      facts.(i) <- u;
      push i
    end
  in
  Obs.Span.with_ ~name:"mhp.seed" (fun () ->
      (* Seeds. *)
      let nt = Threads.n_threads tm in
      for tid = 0 to nt - 1 do
        (* [I-DESCENDANT] second conclusion: ancestors at the entry *)
        let anc = Threads.ancestors tm tid in
        if not (Iset.is_empty anc) then
          List.iter (fun e -> add e anc) (Threads.entry_insts tm tid)
      done;
      (* [I-SIBLING]: the sibling / happens-before queries are read-only and
         quadratic in thread count, so they fan out over domains; the ordered
         merge then seeds [facts] serially in exactly the order the serial
         double loop would, keeping the fixpoint's work order — and so the
         iteration metrics — identical for every [jobs] value. *)
      if Fsam_par.resolve_jobs jobs > 1 then
        (* [happens_before] forces the lazy instance graph; force it here,
           before domains could race on the thunk *)
        ignore (Threads.inst_graph tm);
      let sibling_pairs =
        (* triangular: thread [a] is probed against the [nt - a - 1] later ones *)
        Fsam_par.run_chunks ~label:"mhp.siblings"
          ~weight:(fun a -> nt - a)
          ~jobs ~n:nt (fun ~lo ~hi ->
            let acc = ref [] in
            for a = hi - 1 downto lo do
              for b = nt - 1 downto a + 1 do
                if
                  Threads.siblings tm a b
                  && (not (Threads.happens_before tm a b))
                  && not (Threads.happens_before tm b a)
                then acc := (a, b) :: !acc
              done
            done;
            !acc)
      in
      List.iter
        (List.iter (fun (a, b) ->
             List.iter (fun e -> add e (Iset.singleton b)) (Threads.entry_insts tm a);
             List.iter (fun e -> add e (Iset.singleton a)) (Threads.entry_insts tm b)))
        sibling_pairs;
      (* [I-DESCENDANT] first conclusion is seeded flow-sensitively below: a
         fork's out-fact includes the spawned descendant closure even when the
         in-fact is empty, so prime every fork instance. *)
      for iid = 0 to n - 1 do
        match Threads.fork_spawnees tm iid with [] -> () | _ -> push iid
      done);
  (* Per-instance transfer sets, built once: the fork out-fact adds [gen]
     (spawnees plus their descendant closures), a handled join subtracts
     [kill] — one interned [Iset.diff]/[Iset.union] per visit instead of a
     per-element fold. *)
  let gen = Array.make n Iset.empty in
  let kill = Array.make n Iset.empty in
  for iid = 0 to n - 1 do
    (match Threads.fork_spawnees tm iid with
    | [] -> ()
    | spawnees ->
      gen.(iid) <-
        List.fold_left
          (fun s sp -> Iset.add sp (Iset.union s (Threads.descendants tm sp)))
          Iset.empty spawnees);
    match Threads.join_kills tm iid with
    | [] -> ()
    | kills -> kill.(iid) <- Iset.of_list kills
  done;
  let t = { tm; facts; summaries = Hashtbl.create 0; iterations = 0 } in
  (* Fixpoint. *)
  Obs.Span.with_ ~name:"mhp.fixpoint" (fun () ->
      while not (Queue.is_empty queue) do
        let iid = Queue.pop queue in
        Bitvec.clear queued iid;
        t.iterations <- t.iterations + 1;
        let fact = facts.(iid) in
        let out =
          if not (Iset.is_empty gen.(iid)) then Iset.union fact gen.(iid)
          else if not (Iset.is_empty kill.(iid)) then Iset.diff fact kill.(iid)
          else fact
        in
        List.iter (fun j -> add j out) (Threads.inst_succs tm iid)
      done);
  let summaries = Obs.Span.with_ ~name:"mhp.summaries" (fun () -> build_summaries tm facts) in
  let t = { t with summaries } in
  Obs.Metrics.(add (counter "mhp.iterations") t.iterations);
  Obs.Metrics.(set_max (gauge "mhp.worklist_peak") !peak);
  Obs.Metrics.(set (gauge "mhp.interference_facts") (total_fact_size t));
  Obs.Metrics.(set (gauge "mhp.summary_gids") (Hashtbl.length summaries));
  Obs.Metrics.(
    set (gauge "mhp.summary_groups")
      (Hashtbl.fold (fun _ sm acc -> acc + List.length sm.sm_groups) summaries 0));
  t

let mhp_inst t i j =
  let a = Threads.inst t.tm i and b = Threads.inst t.tm j in
  if a.Threads.i_thread = b.Threads.i_thread then Threads.is_multi t.tm a.Threads.i_thread
  else
    Iset.mem b.Threads.i_thread t.facts.(i) && Iset.mem a.Threads.i_thread t.facts.(j)

(* -- Indexed statement-level queries -------------------------------------- *)

let summary t gid = Option.value ~default:empty_summary (Hashtbl.find_opt t.summaries gid)

let group_of sm tid = List.find_opt (fun g -> g.g_tid = tid) sm.sm_groups

let count st f n = match st with Some s -> f s n | None -> ()
let bump_thread s n = s.thread_checks <- s.thread_checks + n
let bump_inst s n = s.inst_checks <- s.inst_checks + n

let mhp_stmt ?stats t g1 g2 =
  let s1 = summary t g1 and s2 = summary t g2 in
  count stats
    (fun s n ->
      s.stmt_queries <- s.stmt_queries + 1;
      s.naive_checks <- s.naive_checks + n)
    (s1.sm_size * s2.sm_size);
  (* a multi-forked thread appearing on both sides interleaves with itself *)
  (not (Iset.disjoint s1.sm_own_multi s2.sm_own))
  || List.exists
       (fun g ->
         let t1 = g.g_tid in
         count stats bump_thread 1;
         (* threads t2 ≠ t1 that own instances of g2 and that some instance
            of g1 under t1 has in its fact; for each, the reverse condition
            t1 ∈ I(j) is independent, so group facts-unions decide exactly *)
         Iset.exists
           (fun t2 ->
             count stats bump_thread 1;
             t2 <> t1
             &&
             match group_of s2 t2 with
             | Some g2 -> Iset.mem t1 g2.g_facts
             | None -> false)
           (Iset.inter s2.sm_own g.g_facts))
       s1.sm_groups

let mhp_pairs_inst ?stats t g1 g2 =
  let s1 = summary t g1 and s2 = summary t g2 in
  count stats
    (fun s n ->
      s.pair_queries <- s.pair_queries + 1;
      s.naive_checks <- s.naive_checks + n)
    (s1.sm_size * s2.sm_size);
  let acc = ref [] in
  List.iter
    (fun g ->
      let t1 = g.g_tid in
      (* same-thread pairs exist only for a multi-forked thread *)
      if Threads.is_multi t.tm t1 then
        (match group_of s2 t1 with
        | Some g2 ->
          List.iter (fun i -> List.iter (fun j -> acc := (i, j) :: !acc) g2.g_insts) g.g_insts
        | None -> ());
      (* cross-thread pairs, only against threads passing the summary test *)
      Iset.iter
        (fun t2 ->
          count stats bump_thread 1;
          if t2 <> t1 then
            match group_of s2 t2 with
            | Some g2 when Iset.mem t1 g2.g_facts ->
              let is' =
                List.filter
                  (fun i ->
                    count stats bump_inst 1;
                    Iset.mem t2 t.facts.(i))
                  g.g_insts
              in
              if is' <> [] then begin
                let js' =
                  List.filter
                    (fun j ->
                      count stats bump_inst 1;
                      Iset.mem t1 t.facts.(j))
                    g2.g_insts
                in
                List.iter (fun i -> List.iter (fun j -> acc := (i, j) :: !acc) js') is'
              end
            | _ -> ())
        (Iset.inter s2.sm_own g.g_facts))
    s1.sm_groups;
  List.rev !acc

(* -- Naive references (differential tests, bench baselines) --------------- *)

let mhp_pairs_inst_naive ?stats t g1 g2 =
  let is1 = Threads.insts_of_gid t.tm g1 and is2 = Threads.insts_of_gid t.tm g2 in
  List.concat_map
    (fun i ->
      List.filter_map
        (fun j ->
          count stats bump_inst 1;
          if mhp_inst t i j then Some (i, j) else None)
        is2)
    is1

let mhp_stmt_naive ?stats t g1 g2 =
  let is1 = Threads.insts_of_gid t.tm g1 and is2 = Threads.insts_of_gid t.tm g2 in
  List.exists
    (fun i ->
      List.exists
        (fun j ->
          count stats bump_inst 1;
          mhp_inst t i j)
        is2)
    is1

(* First instance pair witnessing that two statements may happen in
   parallel, in the deterministic [mhp_pairs_inst] order. *)
let witness_pair t g1 g2 =
  match mhp_pairs_inst t g1 g2 with [] -> None | p :: _ -> Some p
