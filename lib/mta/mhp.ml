open Fsam_dsa
module Obs = Fsam_obs

type t = {
  tm : Threads.t;
  facts : Iset.t array; (* per instance: I at the statement *)
  mutable iterations : int;
}

let interference t i = t.facts.(i)
let threads t = t.tm
let n_iterations t = t.iterations

let total_fact_size t = Array.fold_left (fun acc s -> acc + Iset.cardinal s) 0 t.facts

let compute ?(jobs = 1) tm =
  let n = Threads.n_insts tm in
  let facts = Array.make n Iset.empty in
  let t = { tm; facts; iterations = 0 } in
  let queue = Queue.create () in
  let queued = Bitvec.create ~capacity:n () in
  let peak = ref 0 in
  let push i =
    if Bitvec.set_if_unset queued i then begin
      Queue.add i queue;
      let depth = Queue.length queue in
      if depth > !peak then peak := depth
    end
  in
  let add i set =
    let u = Iset.union facts.(i) set in
    if not (u == facts.(i)) then begin
      facts.(i) <- u;
      push i
    end
  in
  Obs.Span.with_ ~name:"mhp.seed" (fun () ->
      (* Seeds. *)
      let nt = Threads.n_threads tm in
      for tid = 0 to nt - 1 do
        (* [I-DESCENDANT] second conclusion: ancestors at the entry *)
        let anc = Threads.ancestors tm tid in
        if not (Iset.is_empty anc) then
          List.iter (fun e -> add e anc) (Threads.entry_insts tm tid)
      done;
      (* [I-SIBLING]: the sibling / happens-before queries are read-only and
         quadratic in thread count, so they fan out over domains; the ordered
         merge then seeds [facts] serially in exactly the order the serial
         double loop would, keeping the fixpoint's work order — and so the
         iteration metrics — identical for every [jobs] value. *)
      if Fsam_par.resolve_jobs jobs > 1 then
        (* [happens_before] forces the lazy instance graph; force it here,
           before domains could race on the thunk *)
        ignore (Threads.inst_graph tm);
      let sibling_pairs =
        Fsam_par.run_chunks ~label:"mhp.siblings" ~jobs ~n:nt (fun ~lo ~hi ->
            let acc = ref [] in
            for a = hi - 1 downto lo do
              for b = nt - 1 downto a + 1 do
                if
                  Threads.siblings tm a b
                  && (not (Threads.happens_before tm a b))
                  && not (Threads.happens_before tm b a)
                then acc := (a, b) :: !acc
              done
            done;
            !acc)
      in
      List.iter
        (fun (a, b) ->
          List.iter (fun e -> add e (Iset.singleton b)) (Threads.entry_insts tm a);
          List.iter (fun e -> add e (Iset.singleton a)) (Threads.entry_insts tm b))
        (List.concat sibling_pairs);
      (* [I-DESCENDANT] first conclusion is seeded flow-sensitively below: a
         fork's out-fact includes the spawned descendant closure even when the
         in-fact is empty, so prime every fork instance. *)
      for iid = 0 to n - 1 do
        match Threads.fork_spawnees tm iid with [] -> () | _ -> push iid
      done);
  (* Fixpoint. *)
  Obs.Span.with_ ~name:"mhp.fixpoint" (fun () ->
      while not (Queue.is_empty queue) do
        let iid = Queue.pop queue in
        Bitvec.clear queued iid;
        t.iterations <- t.iterations + 1;
        let fact = facts.(iid) in
        let out =
          match Threads.fork_spawnees tm iid with
          | [] -> (
            match Threads.join_kills tm iid with
            | [] -> fact
            | kills -> List.fold_left (fun f k -> Iset.remove k f) fact kills)
          | spawnees ->
            List.fold_left
              (fun f s -> Iset.add s (Iset.union f (Threads.descendants tm s)))
              fact spawnees
        in
        List.iter (fun j -> add j out) (Threads.inst_succs tm iid)
      done);
  Obs.Metrics.(add (counter "mhp.iterations") t.iterations);
  Obs.Metrics.(set_max (gauge "mhp.worklist_peak") !peak);
  Obs.Metrics.(set (gauge "mhp.interference_facts") (total_fact_size t));
  t

let mhp_inst t i j =
  let a = Threads.inst t.tm i and b = Threads.inst t.tm j in
  if a.Threads.i_thread = b.Threads.i_thread then Threads.is_multi t.tm a.Threads.i_thread
  else
    Iset.mem b.Threads.i_thread t.facts.(i) && Iset.mem a.Threads.i_thread t.facts.(j)

let mhp_pairs_inst t g1 g2 =
  let is1 = Threads.insts_of_gid t.tm g1 and is2 = Threads.insts_of_gid t.tm g2 in
  List.concat_map
    (fun i -> List.filter_map (fun j -> if mhp_inst t i j then Some (i, j) else None) is2)
    is1

let mhp_stmt t g1 g2 =
  let is1 = Threads.insts_of_gid t.tm g1 and is2 = Threads.insts_of_gid t.tm g2 in
  List.exists (fun i -> List.exists (fun j -> mhp_inst t i j) is2) is1
