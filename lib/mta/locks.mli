(** Flow- and context-sensitive lock analysis (paper §3.3.3).

    A {e lock-release span} (Definition 3) is computed for every lock-site
    instance whose lock pointer must-alias a single runtime lock object: the
    set of statement instances forward-reachable from the lock instance —
    calls and returns matched through the instance graph — up to any unlock
    instance that may release the same lock.

    Span heads and tails (Definitions 4, 5) and the non-interference filter
    (Definition 6) are evaluated by the value-flow construction, which owns
    the def-use edges the definitions refer to; this module exposes the
    spans and membership queries it needs. *)

type t

type cache
(** Per-caller query memo and work tallies: a [(i, j)] → common-lock-pairs
    memo plus counters ([c_queries]/[c_bitset_hits]/...). Not shared across
    domains — parallel callers each make their own and merge the counters
    after the join. *)

val make_cache : unit -> cache

val cache_queries : cache -> int
val cache_bitset_hits : cache -> int
val cache_memo_hits : cache -> int
val cache_span_checks : cache -> int
val cache_naive_checks : cache -> int

val compute : Fsam_ir.Prog.t -> Fsam_andersen.Solver.t -> Threads.t -> t
(** Besides the spans, [compute] compacts the runtime lock objects into
    dense ids and precomputes one lock-set {!Fsam_dsa.Bitvec.t} per
    instance, so {!commonly_protected} is a single bitwise-AND scan. *)

val n_spans : t -> int
val n_lock_objs : t -> int
val span_lock : t -> int -> int
(** Runtime lock object protecting the span. *)

val span_members : t -> int -> int list
(** Statement-instance ids in the span. *)

val spans_of_inst : t -> int -> int list

(** Span ids containing the given instance. *)

val held_locks : t -> int -> int list
(** Sorted, deduplicated lock objects of the spans covering the instance —
    the held lock set reported in race witnesses. *)

val commonly_protected : t -> int -> int -> bool
(** Do the two instances hold a common runtime lock ([common_lock] would be
    non-empty)? One bitwise-AND over the precomputed per-instance lock
    sets — no span enumeration. *)

val common_lock : ?cache:cache -> t -> int -> int -> (int * int) list
(** For two instances, the pairs of spans [(sp, sp')] with [sp ∋ i],
    [sp' ∋ j] protected by the same runtime lock ([l ≡ l'] of
    Definition 6). Empty when the two are not commonly protected. The
    bitset test short-circuits the empty answer; with [cache], non-empty
    answers are memoised per instance pair and work is tallied. *)

val common_lock_naive : ?stats:cache -> t -> int -> int -> (int * int) list
(** Reference implementation scanning all span pairs of the two instances;
    [stats] tallies the comparisons. For differential tests and baselines. *)
