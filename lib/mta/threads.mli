open Fsam_ir

(** The static thread model of paper §3.1 together with the per-thread
    context-sensitive statement-instance graph that the interleaving, lock
    and value-flow analyses all operate on.

    An {e abstract thread} is a context-sensitive fork site [(c, fk)] — plus
    the main thread. A thread is {e multi-forked} (set [M], Definition 1)
    when its fork site sits in a loop or recursion or its spawner is
    multi-forked. A statement {e instance} is a triple [(t, c, s)]: thread,
    calling context (from the entry of [main], fork sites included), and
    statement gid. Instances and their intra-thread ICFG edges are
    enumerated here once and reused by every later phase.

    Join handling ([T-JOIN]): a join instance handles a spawnee when the
    spawnee's fork site resolves through the handle's points-to set, the
    join's thread is the spawner, both occur under the same calling context,
    and the spawnee is a unique runtime thread — not multi-forked, or forked
    and joined in the paper's "symmetric loop" pattern (Figure 11: a
    fork loop and a separate join loop over the same handles, recognised
    structurally in place of LLVM's SCEV). The kill set of a join closes
    over {e full} joins ([T-JOIN] transitivity): a fully joined spawnee's
    own fully joined descendants die with it. *)

type t

type inst = { i_thread : int; i_ctx : Ctx.t; i_gid : int }

val build : ?max_ctx_depth:int -> Prog.t -> Fsam_andersen.Solver.t -> Icfg.t -> t

(* Threads --------------------------------------------------------------- *)

val n_threads : t -> int
val main_tid : t -> int
val is_multi : t -> int -> bool
val parent : t -> int -> int option
val start_fns : t -> int -> int list
val fork_gid_of : t -> int -> int option
(** The fork statement that creates the thread; [None] for main. *)

val fork_id_of : t -> int -> int option
val descendants : t -> int -> Fsam_dsa.Iset.t
(** Transitive spawnees, excluding the thread itself. *)

val ancestors : t -> int -> Fsam_dsa.Iset.t
val siblings : t -> int -> int -> bool
(** Neither thread is an ancestor of the other ([T-SIBLING]). *)

val happens_before : t -> int -> int -> bool
(** [happens_before m t t'] — Definition 2 for sibling threads: the fork
    site of [t'] is only reachable after a join of [t] on every path. *)

val fork_chain : t -> int -> (int * int option) list
(** The spawn chain from main down to (and including) the thread: each
    element is [(tid, fork gid that created it)]; main carries [None].
    This is the fork-chain half of an MHP justification. *)

val thread_name : t -> int -> string

(* Instances -------------------------------------------------------------- *)

val n_insts : t -> int
val inst : t -> int -> inst
val inst_succs : t -> int -> int list
val entry_insts : t -> int -> int list
val insts_of_gid : t -> int -> int list
val insts_of_thread : t -> int -> int list
val find_inst : t -> thread:int -> ctx:Ctx.t -> gid:int -> int option
val inst_graph : t -> Fsam_graph.Digraph.t
(** Instance-level successor graph (all threads; no cross-thread edges). *)

val fork_spawnees : t -> int -> int list
(** Threads directly spawned by the given fork instance. *)

val join_kills : t -> int -> int list
(** Threads whose execution is complete after the given join instance
    ([I-JOIN] kill set, closed over full joins). *)

val fully_joins : t -> int -> int -> bool
(** [fully_joins m t t'] — [t] joins its direct spawnee [t'] on every path
    from the fork site to the enclosing function's exit. *)

val ctx_store : t -> Ctx.store
val pp_stats : Format.formatter -> t -> unit
