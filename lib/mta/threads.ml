open Fsam_dsa
open Fsam_ir
module A = Fsam_andersen.Solver

type inst = { i_thread : int; i_ctx : Ctx.t; i_gid : int }

type thread = {
  tid : int;
  spawn_ctx : Ctx.t; (* calling context of the fork site *)
  fork_gid : int option; (* None for main *)
  fork_id : int option;
  start : int list; (* start procedures *)
  par : int option;
  multi : bool;
  multi_loop_only : bool; (* multi-forked solely because the fork is in a loop *)
}

type t = {
  prog : Prog.t;
  ast : A.t;
  icfg : Icfg.t;
  cs : Ctx.store;
  threads : thread Vec.t;
  insts : inst Vec.t;
  inst_index : (int * Ctx.t * int, int) Hashtbl.t;
  isucc : int list Vec.t;
  entry_tbl : int list Vec.t; (* per thread: entry instance ids *)
  by_gid : (int, int list) Hashtbl.t;
  by_thread : int list Vec.t;
  forks_at : (int, int list) Hashtbl.t; (* fork iid -> direct spawnee tids *)
  kills_at : (int, int list) Hashtbl.t; (* join iid -> killed tids *)
  desc : Iset.t array;
  anc : Iset.t array;
  full_join_tbl : (int * int, bool) Hashtbl.t;
  igraph : Fsam_graph.Digraph.t lazy_t;
}

(* -- Exploration ---------------------------------------------------------- *)

type explore_state = {
  e_prog : Prog.t;
  e_ast : A.t;
  e_icfg : Icfg.t;
  e_cs : Ctx.store;
  e_threads : thread Vec.t;
  e_thread_index : (Ctx.t * int, int) Hashtbl.t;
  e_insts : inst Vec.t;
  e_index : (int * Ctx.t * int, int) Hashtbl.t;
  e_isucc : int list Vec.t;
  e_entries : int list Vec.t;
  e_joins : (int * int) list ref; (* (join iid, join gid) *)
  e_forks : (int * int) list ref; (* (fork iid, spawnee tid) *)
  sloppy : (int, unit) Hashtbl.t; (* callsites whose push was skipped *)
  max_depth : int;
}

let intern_inst st thread ctx gid =
  match Hashtbl.find_opt st.e_index (thread, ctx, gid) with
  | Some i -> (i, false)
  | None ->
    let i = Vec.push st.e_insts { i_thread = thread; i_ctx = ctx; i_gid = gid } in
    ignore (Vec.push st.e_isucc []);
    Hashtbl.replace st.e_index (thread, ctx, gid) i;
    (i, true)

(* Multi-fork test (Definition 1): the fork statement sits in a CFG cycle; or
   some callsite on the context chain sits in a CFG cycle; or any function on
   the chain is recursive (collapsed callsites); or the spawner is multi. *)
let multi_of st ~fork_gid ~spawn_ctx ~parent_multi =
  let fork_in_loop = Icfg.in_cfg_cycle st.e_icfg fork_gid in
  let chain = Ctx.to_list st.e_cs spawn_ctx in
  let chain_loop = List.exists (fun site -> Icfg.in_cfg_cycle st.e_icfg site) chain in
  let recursive =
    Icfg.collapsed_callsite st.e_icfg fork_gid
    || List.exists (fun site -> Icfg.collapsed_callsite st.e_icfg site) chain
    ||
    (* the fork's own function is recursive *)
    let cg = A.call_graph st.e_ast in
    let scc = Fsam_graph.Scc.compute cg in
    let fid = Icfg.fid_of st.e_icfg fork_gid in
    not (Fsam_graph.Scc.is_trivial scc cg fid)
  in
  let multi = fork_in_loop || chain_loop || recursive || parent_multi in
  let loop_only = multi && fork_in_loop && (not chain_loop) && (not recursive) && not parent_multi in
  (multi, loop_only)

let new_thread st ~spawn_ctx ~fork_gid ~fork_id ~parent:par ~parent_multi =
  match Hashtbl.find_opt st.e_thread_index (spawn_ctx, fork_gid) with
  | Some tid -> (tid, false)
  | None ->
    let start = A.fork_targets st.e_ast fork_id in
    let multi, multi_loop_only = multi_of st ~fork_gid ~spawn_ctx ~parent_multi in
    let tid =
      Vec.push st.e_threads
        {
          tid = Vec.length st.e_threads;
          spawn_ctx;
          fork_gid = Some fork_gid;
          fork_id = Some fork_id;
          start;
          par = Some par;
          multi;
          multi_loop_only;
        }
    in
    ignore (Vec.push st.e_entries []);
    Hashtbl.replace st.e_thread_index (spawn_ctx, fork_gid) tid;
    (tid, true)

let explore_thread st tid =
  let th = Vec.get st.e_threads tid in
  let entry_ctx =
    match th.fork_gid with
    | None -> Ctx.empty
    | Some fk -> Ctx.push st.e_cs th.spawn_ctx fk
  in
  let worklist = Queue.create () in
  let entries =
    List.map
      (fun fid ->
        let g = Icfg.entry_gid st.e_icfg fid in
        let i, fresh = intern_inst st tid entry_ctx g in
        if fresh then Queue.add i worklist;
        i)
      th.start
  in
  Vec.set st.e_entries tid entries;
  let spawned = ref [] in
  while not (Queue.is_empty worklist) do
    let iid = Queue.pop worklist in
    let { i_ctx = ctx; i_gid = gid; _ } = Vec.get st.e_insts iid in
    (* record fork / join instances *)
    (match Icfg.stmt st.e_icfg gid with
    | Stmt.Fork { fork_id; _ } when A.fork_targets st.e_ast fork_id <> [] ->
      let tid', _fresh =
        new_thread st ~spawn_ctx:ctx ~fork_gid:gid ~fork_id ~parent:tid
          ~parent_multi:th.multi
      in
      st.e_forks := (iid, tid') :: !(st.e_forks);
      if not (List.mem tid' !spawned) then spawned := tid' :: !spawned
    | Stmt.Join _ -> st.e_joins := (iid, gid) :: !(st.e_joins)
    | _ -> ());
    let step ctx' gid' =
      let i, fresh = intern_inst st tid ctx' gid' in
      let cur = Vec.get st.e_isucc iid in
      if not (List.mem i cur) then Vec.set st.e_isucc iid (i :: cur);
      if fresh then Queue.add i worklist
    in
    List.iter
      (fun (kind, v) ->
        match kind with
        | Icfg.Intra -> step ctx v
        | Icfg.Call cs ->
          if Icfg.collapsed_callsite st.e_icfg cs || Ctx.depth st.e_cs ctx >= st.max_depth
          then begin
            Hashtbl.replace st.sloppy cs ();
            step ctx v
          end
          else step (Ctx.push st.e_cs ctx cs) v
        | Icfg.Ret cs -> (
          match Ctx.peek st.e_cs ctx with
          | Some top when top = cs -> step (Option.get (Ctx.pop st.e_cs ctx)) v
          | _ ->
            if Icfg.collapsed_callsite st.e_icfg cs || Hashtbl.mem st.sloppy cs then
              step ctx v))
      (Icfg.succs st.e_icfg gid)
  done;
  !spawned

let explore prog ast icfg max_depth =
  (* re-run from scratch whenever the sloppy-return set grows: returns of
     depth-truncated callsites must be followable from any context *)
  let sloppy = Hashtbl.create 16 in
  let rec attempt () =
    let st =
      {
        e_prog = prog;
        e_ast = ast;
        e_icfg = icfg;
        e_cs = Ctx.create_store ();
        e_threads = Vec.create ();
        e_thread_index = Hashtbl.create 16;
        e_insts = Vec.create ();
        e_index = Hashtbl.create 1024;
        e_isucc = Vec.create ();
        e_entries = Vec.create ();
        e_joins = ref [];
        e_forks = ref [];
        sloppy;
        max_depth;
      }
    in
    let n0 = Hashtbl.length sloppy in
    ignore
      (Vec.push st.e_threads
         {
           tid = 0;
           spawn_ctx = Ctx.empty;
           fork_gid = None;
           fork_id = None;
           start = [ Prog.main_fid prog ];
           par = None;
           multi = false;
           multi_loop_only = false;
         });
    ignore (Vec.push st.e_entries []);
    let q = Queue.create () in
    Queue.add 0 q;
    let seen = Hashtbl.create 16 in
    Hashtbl.replace seen 0 ();
    while not (Queue.is_empty q) do
      let tid = Queue.pop q in
      let spawned = explore_thread st tid in
      List.iter
        (fun t' ->
          if not (Hashtbl.mem seen t') then begin
            Hashtbl.replace seen t' ();
            Queue.add t' q
          end)
        spawned
    done;
    if Hashtbl.length sloppy > n0 then attempt () else st
  in
  attempt ()

(* -- Post-exploration relations ------------------------------------------ *)

let compute_desc_anc threads =
  let n = Vec.length threads in
  let desc = Array.make n Iset.empty and anc = Array.make n Iset.empty in
  (* children enumerated via parent links; close transitively (tree, so a
     single bottom-up pass in creation order is not enough — iterate) *)
  let changed = ref true in
  while !changed do
    changed := false;
    Vec.iter
      (fun th ->
        match th.par with
        | Some p ->
          let d = Iset.add th.tid (Iset.union desc.(p) desc.(th.tid)) in
          if not (Iset.equal d desc.(p)) then begin
            desc.(p) <- d;
            changed := true
          end
        | None -> ())
      threads
  done;
  Array.iteri (fun t ds -> Iset.iter (fun d -> anc.(d) <- Iset.add t anc.(d)) ds) desc;
  (desc, anc)

(* Symmetric fork/join loop recognition (Figure 11): fork and join each sit
   in their own loop of the same function — concretely, the fork lies on a
   cycle avoiding the join and vice versa. (A surrounding convergence loop,
   as in kmeans, may put both into one maximal SCC; what matters is that
   the inner fork loop and the inner join loop are distinct.) *)
let symmetric_loop_join icfg ~fork_gid ~join_gid =
  let prog = Icfg.prog icfg in
  let ffid = Icfg.fid_of icfg fork_gid and jfid = Icfg.fid_of icfg join_gid in
  ffid = jfid
  && Icfg.in_cfg_cycle icfg fork_gid
  && Icfg.in_cfg_cycle icfg join_gid
  &&
  let f = Prog.func prog ffid in
  let fk_idx = snd (Prog.of_gid prog fork_gid) and jn_idx = snd (Prog.of_gid prog join_gid) in
  let on_cycle_avoiding a b =
    (* is [a] on a cycle of the CFG with node [b] deleted? *)
    let g = Fsam_graph.Digraph.create ~size_hint:(Func.n_stmts f) () in
    Array.iteri
      (fun i succs ->
        Fsam_graph.Digraph.ensure_node g i;
        if i <> b then List.iter (fun j -> if j <> b then Fsam_graph.Digraph.add_edge g i j) succs)
      f.Func.succ;
    let scc = Fsam_graph.Scc.compute g in
    not (Fsam_graph.Scc.is_trivial scc g a)
  in
  on_cycle_avoiding fk_idx jn_idx && on_cycle_avoiding jn_idx fk_idx

(* Exit statements of the CFG cycle containing [gid]: successors of cycle
   members outside the cycle. For a symmetric join loop the kill takes
   effect there — after the loop has joined every runtime instance — rather
   than at the join statement itself. *)
let loop_exit_gids icfg gid =
  let prog = Icfg.prog icfg in
  let fid = Icfg.fid_of icfg gid in
  let f = Prog.func prog fid in
  let g = Func.cfg f in
  let scc = Fsam_graph.Scc.compute g in
  let idx = snd (Prog.of_gid prog gid) in
  let comp = scc.Fsam_graph.Scc.comp_of.(idx) in
  let exits = ref [] in
  List.iter
    (fun m ->
      List.iter
        (fun s ->
          if scc.Fsam_graph.Scc.comp_of.(s) <> comp then begin
            let eg = Prog.gid prog ~fid ~idx:s in
            if not (List.mem eg !exits) then exits := eg :: !exits
          end)
        f.Func.succ.(m))
    scc.Fsam_graph.Scc.comps.(comp);
  !exits

let build ?(max_ctx_depth = 24) prog ast icfg =
  let st = explore prog ast icfg max_ctx_depth in
  let threads = st.e_threads in
  let desc, anc = compute_desc_anc threads in
  (* join resolution *)
  let kills_at = Hashtbl.create 16 in
  let full_join_tbl = Hashtbl.create 16 in
  (* direct handled joins: join iid -> spawnee tids *)
  let direct_joins = Hashtbl.create 16 in
  (* join sites of a spawnee within the parent: tid' -> local stmt idx list *)
  let join_sites_of = Hashtbl.create 16 in
  List.iter
    (fun (iid, jn_gid) ->
      let { i_thread = tid; i_ctx = ctx; _ } = Vec.get st.e_insts iid in
      let jfid, jidx = Prog.of_gid prog jn_gid in
      let fork_ids = A.join_threads ast ~fid:jfid ~idx:jidx in
      List.iter
        (fun k ->
          let fk_fid, fk_idx = Prog.fork_site prog k in
          let fk_gid = Prog.gid prog ~fid:fk_fid ~idx:fk_idx in
          match Hashtbl.find_opt st.e_thread_index (ctx, fk_gid) with
          | Some tid' ->
            let th' = Vec.get threads tid' in
            if th'.par = Some tid then
              if not th'.multi then begin
                Hashtbl.replace direct_joins iid
                  (tid' :: Option.value ~default:[] (Hashtbl.find_opt direct_joins iid));
                Hashtbl.replace join_sites_of tid'
                  (jn_gid :: Option.value ~default:[] (Hashtbl.find_opt join_sites_of tid'))
              end
              else if
                th'.multi_loop_only
                && symmetric_loop_join icfg ~fork_gid:fk_gid ~join_gid:jn_gid
              then
                (* the kill takes effect at the join loop's exits, once all
                   runtime instances have been joined (Figure 11) *)
                List.iter
                  (fun exit_gid ->
                    match Hashtbl.find_opt st.e_index (tid, ctx, exit_gid) with
                    | Some exit_iid ->
                      Hashtbl.replace direct_joins exit_iid
                        (tid'
                        :: Option.value ~default:[]
                             (Hashtbl.find_opt direct_joins exit_iid));
                      Hashtbl.replace join_sites_of tid'
                        (exit_gid
                        :: Option.value ~default:[] (Hashtbl.find_opt join_sites_of tid'))
                    | None -> ())
                  (loop_exit_gids icfg jn_gid)
          | None -> ())
        fork_ids)
    !(st.e_joins);
  (* full joins: every path from the fork statement to the enclosing
     function's exits passes one of the spawnee's handled join sites *)
  let is_full_join tid' =
    let th' = Vec.get threads tid' in
    match th'.fork_gid with
    | None -> false
    | Some fk_gid -> (
      match Hashtbl.find_opt join_sites_of tid' with
      | None -> false
      | Some jns ->
        let fid = Icfg.fid_of icfg fk_gid in
        let f = Prog.func prog fid in
        let g = Func.cfg f in
        let fk_idx = snd (Prog.of_gid prog fk_gid) in
        let targets = Bitvec.create ~capacity:(Func.n_stmts f) () in
        List.iter
          (fun jg -> if Icfg.fid_of icfg jg = fid then Bitvec.set targets (snd (Prog.of_gid prog jg)))
          jns;
        Fsam_graph.Reach.all_paths_hit g ~src:fk_idx ~targets ~exits:f.Func.exits)
  in
  let full_join_cache = Hashtbl.create 16 in
  let fully_joined tid' =
    match Hashtbl.find_opt full_join_cache tid' with
    | Some b -> b
    | None ->
      let b = is_full_join tid' in
      Hashtbl.replace full_join_cache tid' b;
      b
  in
  (* kill sets: direct spawnee plus closure over fully joined descendants *)
  let rec closure acc tid' =
    if List.mem tid' acc then acc
    else
      let acc = tid' :: acc in
      (* descendants of tid' that tid' fully joins *)
      Iset.fold
        (fun d acc ->
          let th_d = Vec.get threads d in
          if th_d.par = Some tid' && fully_joined d then closure acc d else acc)
        desc.(tid') acc
  in
  Hashtbl.iter
    (fun iid tids ->
      let killed = List.fold_left closure [] tids in
      Hashtbl.replace kills_at iid killed)
    direct_joins;
  Vec.iter
    (fun th ->
      match th.par with
      | Some p -> Hashtbl.replace full_join_tbl (p, th.tid) (fully_joined th.tid)
      | None -> ())
    threads;
  (* fork table *)
  let forks_at = Hashtbl.create 16 in
  List.iter
    (fun (iid, tid') ->
      Hashtbl.replace forks_at iid
        (tid' :: Option.value ~default:[] (Hashtbl.find_opt forks_at iid)))
    !(st.e_forks);
  (* indices *)
  let by_gid = Hashtbl.create 1024 in
  let by_thread = Vec.create () in
  for _ = 1 to Vec.length threads do
    ignore (Vec.push by_thread [])
  done;
  Vec.iteri
    (fun iid { i_thread; i_gid; _ } ->
      Hashtbl.replace by_gid i_gid
        (iid :: Option.value ~default:[] (Hashtbl.find_opt by_gid i_gid));
      Vec.set by_thread i_thread (iid :: Vec.get by_thread i_thread))
    st.e_insts;
  let igraph =
    lazy
      (let g = Fsam_graph.Digraph.create ~size_hint:(Vec.length st.e_insts) () in
       let n = Vec.length st.e_insts in
       if n > 0 then Fsam_graph.Digraph.ensure_node g (n - 1);
       Vec.iteri (fun i succs -> List.iter (fun j -> Fsam_graph.Digraph.add_edge g i j) succs) st.e_isucc;
       g)
  in
  {
    prog;
    ast;
    icfg;
    cs = st.e_cs;
    threads;
    insts = st.e_insts;
    inst_index = st.e_index;
    isucc = st.e_isucc;
    entry_tbl = st.e_entries;
    by_gid;
    by_thread;
    forks_at;
    kills_at;
    desc;
    anc;
    full_join_tbl;
    igraph;
  }

(* -- Queries -------------------------------------------------------------- *)

let n_threads t = Vec.length t.threads
let main_tid _ = 0
let is_multi t tid = (Vec.get t.threads tid).multi
let parent t tid = (Vec.get t.threads tid).par
let start_fns t tid = (Vec.get t.threads tid).start
let fork_gid_of t tid = (Vec.get t.threads tid).fork_gid
let fork_id_of t tid = (Vec.get t.threads tid).fork_id
let descendants t tid = t.desc.(tid)
let ancestors t tid = t.anc.(tid)

let siblings t a b =
  a <> b && (not (Iset.mem b t.desc.(a))) && not (Iset.mem a t.desc.(b))

(* Chain of (thread, creating fork gid) from main down to [tid]; the
   justification backbone of MHP witnesses (main's entry is (main, None)). *)
let fork_chain t tid =
  let rec up tid acc =
    let acc = (tid, (Vec.get t.threads tid).fork_gid) :: acc in
    match (Vec.get t.threads tid).par with None -> acc | Some p -> up p acc
  in
  up tid []

let thread_name t tid =
  if tid = 0 then "main"
  else
    let th = Vec.get t.threads tid in
    Printf.sprintf "t%d@%s" tid
      (match th.start with
      | f :: _ -> (Prog.func t.prog f).Func.fname
      | [] -> "?")

let n_insts t = Vec.length t.insts
let inst t i = Vec.get t.insts i
let inst_succs t i = Vec.get t.isucc i
let entry_insts t tid = Vec.get t.entry_tbl tid
let insts_of_gid t g = Option.value ~default:[] (Hashtbl.find_opt t.by_gid g)
let insts_of_thread t tid = Vec.get t.by_thread tid
let find_inst t ~thread ~ctx ~gid = Hashtbl.find_opt t.inst_index (thread, ctx, gid)
let inst_graph t = Lazy.force t.igraph
let fork_spawnees t iid = Option.value ~default:[] (Hashtbl.find_opt t.forks_at iid)
let join_kills t iid = Option.value ~default:[] (Hashtbl.find_opt t.kills_at iid)

let fully_joins t p c =
  Option.value ~default:false (Hashtbl.find_opt t.full_join_tbl (p, c))

(* Definition 2: sibling [a] happens before sibling [b] when [b]'s spawn is
   only reachable after [a] has been (transitively) joined. Concretely: there
   is an ancestor thread [tau] of [b] containing join instances whose kill
   sets include [a], and within [tau] every path from its entry to the fork
   instance of [b]'s ancestor chain passes such a join. (The kill sets are
   already closed over full joins, so this covers the Figure 8 case where
   [t3 > t2] although [t3] was joined only indirectly through [t1].) *)
let happens_before t a b =
  siblings t a b
  && Iset.exists
       (fun tau ->
         (* the child of tau on the ancestor path of b *)
         let rec chain_child x =
           match (Vec.get t.threads x).par with
           | Some p when p = tau -> Some x
           | Some p -> chain_child p
           | None -> None
         in
         match chain_child b with
         | None -> false
         | Some cb -> (
           let thcb = Vec.get t.threads cb in
           match thcb.fork_gid with
           | None -> false
           | Some fk_gid ->
             let g = inst_graph t in
             let targets = Bitvec.create ~capacity:(n_insts t) () in
             let have_target = ref false in
             Hashtbl.iter
               (fun iid killed ->
                 if (inst t iid).i_thread = tau && List.mem a killed then begin
                   Bitvec.set targets iid;
                   have_target := true
                 end)
               t.kills_at;
             !have_target
             &&
             let fork_insts =
               List.filter
                 (fun iid ->
                   (inst t iid).i_thread = tau && (inst t iid).i_ctx = thcb.spawn_ctx)
                 (insts_of_gid t fk_gid)
             in
             fork_insts <> []
             && List.for_all
                  (fun fk_inst ->
                    List.for_all
                      (fun src ->
                        Fsam_graph.Reach.all_paths_hit g ~src ~targets ~exits:[ fk_inst ])
                      (entry_insts t tau))
                  fork_insts))
       (ancestors t b)

let ctx_store t = t.cs

let pp_stats ppf t =
  Format.fprintf ppf "threads: %d (%d multi-forked), %d statement instances"
    (n_threads t)
    (Vec.fold (fun acc th -> if th.multi then acc + 1 else acc) 0 t.threads)
    (n_insts t)
