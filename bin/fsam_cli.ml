(* fsam — command-line driver: analyze MiniC programs with FSAM, the
   NonSparse baseline or Andersen's analysis; detect races; dump IR; run the
   concrete interpreter; list and analyze the built-in benchmark suite. *)

open Cmdliner
module D = Fsam_core.Driver
module Prog = Fsam_ir.Prog

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program source =
  match Fsam_workloads.Suite.find source with
  | Some spec -> spec.Fsam_workloads.Suite.build spec.Fsam_workloads.Suite.scale
  | None -> Fsam_frontend.Lower.compile_string (read_file source)

let config_of_string = function
  | "full" -> Ok D.default_config
  | "no-interleaving" -> Ok D.no_interleaving
  | "no-value-flow" -> Ok D.no_value_flow
  | "no-lock" -> Ok D.no_lock
  | s -> Error (Printf.sprintf "unknown configuration %S" s)

let scheduler_of_string = function
  | "priority" -> Ok Fsam_core.Sparse.Priority
  | "fifo" -> Ok Fsam_core.Sparse.Fifo
  | s -> Error (Printf.sprintf "unknown scheduler %S (priority, fifo)" s)

(* -- arguments ------------------------------------------------------------- *)

let source_arg =
  let doc =
    "Program to analyze: a MiniC source file, or the name of a built-in \
     benchmark (word_count, kmeans, radiosity, automount, ferret, bodytrack, \
     httpd_server, mt_daapd, raytrace, x264)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let config_arg =
  let doc = "Analysis configuration: full, no-interleaving, no-value-flow, no-lock." in
  Arg.(value & opt string "full" & info [ "config" ] ~docv:"CONFIG" ~doc)

let jobs_arg =
  let doc =
    "Number of domains for the parallelisable passes (MHP sibling seeding, \
     the SVFG's [THREAD-VF] pair discovery and the post-solve clients). 1 \
     (the default) runs everything in the calling domain; 0 means auto \
     (Domain.recommended_domain_count, i.e. Fsam_par.resolve_jobs). Small \
     inputs stay serial at any value via the adaptive sequential cutoff \
     (FSAM_PAR_CUTOFF overrides the threshold). Reports are byte-identical \
     for every value."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let with_program f source =
  match load_program source with
  | prog -> f prog
  | exception Fsam_frontend.Lexer.Error e | exception Fsam_frontend.Parser.Error e
  | exception Fsam_frontend.Lower.Error e ->
    Printf.eprintf "error: %s\n" e;
    exit 1
  | exception Sys_error e ->
    Printf.eprintf "error: %s\n" e;
    exit 1

(* -- analyze ---------------------------------------------------------------- *)

module T = Fsam_core.Telemetry

(* Arm the crash flush before the pipeline runs: if the analysis dies, the
   requested --json / --trace files still get partial documents built from
   the open span stack. A successful export disarms both. *)
let arm_crash_flush ~json ~trace =
  (match json with Some p when p <> "-" -> T.flush_at_exit p | _ -> ());
  match trace with Some p -> Fsam_obs.Trace.flush_at_exit p | None -> ()

(* shared by analyze/races: write the telemetry document and/or the Chrome
   trace of the spans recorded by the last pipeline run *)
let export ~json ~trace mk_doc =
  try
    (match json with Some path -> T.write_json path (mk_doc ()) | None -> ());
    (match trace with Some path -> T.write_trace path | None -> ());
    T.mark_flushed ();
    Fsam_obs.Trace.mark_flushed ()
  with Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the full report, metrics registry and span tree as JSON.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write the span tree in Chrome trace_event format \
                 (chrome://tracing, Perfetto).")

let provenance_arg =
  Arg.(value & flag
       & info [ "provenance" ]
           ~doc:"Record derivation provenance during the run (fsam engine): every \
                 points-to fact keeps the edge that introduced it, every store its \
                 strong/weak verdict and every [THREAD-VF] candidate its \
                 MHP/lock verdict. Results are identical; see $(b,fsam explain).")

let profile_flag =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Enable the execution profiler (fsam engine): per-domain timeline \
                 lanes in --trace, per-domain par.* gauges and the solver \
                 convergence curve in --json. Results are identical; see \
                 $(b,fsam profile) for the report view.")

let analyze source config_name scheduler_name engine dump_pts json trace jobs
    nonsparse_budget provenance profile =
  with_program
    (fun prog ->
      arm_crash_flush ~json ~trace;
      match engine with
      | "andersen" ->
        let m = Fsam_core.Measure.run (fun () -> Fsam_andersen.Solver.run prog) in
        Format.printf "%a@." Fsam_andersen.Solver.pp_stats m.Fsam_core.Measure.value;
        Format.printf "time: %.3fs (%.3fs cpu), live heap: %.1f MB@."
          m.Fsam_core.Measure.wall_seconds m.Fsam_core.Measure.cpu_seconds
          m.Fsam_core.Measure.live_mb;
        export ~json ~trace (fun () ->
            T.analysis_json ~program:source ~engine:"andersen" ~config:config_name
              ~wall_seconds:m.Fsam_core.Measure.wall_seconds
              ~cpu_seconds:m.Fsam_core.Measure.cpu_seconds
              ~live_mb:m.Fsam_core.Measure.live_mb ());
        if dump_pts then
          for v = 0 to Prog.n_vars prog - 1 do
            let pts = Fsam_andersen.Solver.pt_var m.Fsam_core.Measure.value v in
            if not (Fsam_dsa.Iset.is_empty pts) then
              Format.printf "pt(%s) = {%s}@." (Prog.var_name prog v)
                (String.concat ", "
                   (List.map (Prog.obj_name prog) (Fsam_dsa.Iset.elements pts)))
          done
      | "nonsparse" ->
        let config =
          match nonsparse_budget with
          | Some b -> { D.default_config with nonsparse_budget = b }
          | None -> D.default_config
        in
        let m = Fsam_core.Measure.run (fun () -> D.run_nonsparse ~config prog) in
        (match fst m.Fsam_core.Measure.value with
        | Fsam_core.Nonsparse.Done ns ->
          Format.printf "%a@." Fsam_core.Nonsparse.pp_stats ns;
          Format.printf "time: %.3fs (%.3fs cpu), live heap: %.1f MB@."
            m.Fsam_core.Measure.wall_seconds m.Fsam_core.Measure.cpu_seconds
            m.Fsam_core.Measure.live_mb
        | Fsam_core.Nonsparse.Timeout budget ->
          Format.printf "nonsparse: OOT (budget %.0fs exceeded)@." budget;
          Printf.eprintf
            "nonsparse: analysis ran OUT OF TIME after %.0f s of CPU time and \
             produced no points-to results.\n\
             Raise the limit with --nonsparse-budget SECONDS, shrink the \
             program, or use --engine fsam (the sparse analysis, usually \
             orders of magnitude faster).\n"
            budget);
        export ~json ~trace (fun () ->
            T.analysis_json ~program:source ~engine:"nonsparse" ~config:config_name
              ~wall_seconds:m.Fsam_core.Measure.wall_seconds
              ~cpu_seconds:m.Fsam_core.Measure.cpu_seconds
              ~live_mb:m.Fsam_core.Measure.live_mb ())
      | "fsam" -> (
        match
          Result.bind (config_of_string config_name) (fun config ->
              Result.map
                (fun scheduler -> { config with D.scheduler })
                (scheduler_of_string scheduler_name))
        with
        | Error e ->
          Printf.eprintf "error: %s\n" e;
          exit 1
        | Ok config ->
          let config =
            {
              config with
              D.jobs;
              provenance;
              profile;
              nonsparse_budget =
                Option.value ~default:config.D.nonsparse_budget nonsparse_budget;
            }
          in
          let m = Fsam_core.Measure.run (fun () -> D.run ~config prog) in
          let d = m.Fsam_core.Measure.value in
          Format.printf "%a@." D.pp_summary d;
          Format.printf "time: %.3fs (%.3fs cpu), live heap: %.1f MB@."
            m.Fsam_core.Measure.wall_seconds m.Fsam_core.Measure.cpu_seconds
            m.Fsam_core.Measure.live_mb;
          export ~json ~trace (fun () ->
              T.analysis_json ~program:source ~engine:"fsam" ~config:config_name
                ~wall_seconds:m.Fsam_core.Measure.wall_seconds
                ~cpu_seconds:m.Fsam_core.Measure.cpu_seconds
                ~live_mb:m.Fsam_core.Measure.live_mb
                ~report:(Fsam_core.Report.build d) ());
          if dump_pts then
            for v = 0 to Prog.n_vars prog - 1 do
              let names = D.pt_names d v in
              if names <> [] then
                Format.printf "pt(%s) = {%s}@." (Prog.var_name prog v)
                  (String.concat ", " names)
            done)
      | e ->
        Printf.eprintf "error: unknown engine %S (fsam, nonsparse, andersen)\n" e;
        exit 1)
    source

let analyze_cmd =
  let engine =
    Arg.(value & opt string "fsam" & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Analysis engine: fsam, nonsparse or andersen.")
  in
  let scheduler =
    Arg.(value & opt string "priority" & info [ "scheduler" ] ~docv:"SCHED"
           ~doc:"Sparse-solver worklist scheduler (fsam engine only): priority \
                 (SVFG-condensation topological order) or fifo (legacy queue). \
                 Both reach the same fixpoint.")
  in
  let dump =
    Arg.(value & flag & info [ "dump-pts" ] ~doc:"Print non-empty points-to sets.")
  in
  let nonsparse_budget =
    Arg.(value & opt (some float) None
         & info [ "nonsparse-budget" ] ~docv:"SECONDS"
             ~doc:"CPU-time budget for the nonsparse engine before it reports \
                   OOT (default 7200).")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run a pointer analysis on a program")
    Term.(
      const analyze $ source_arg $ config_arg $ scheduler $ engine $ dump $ json_arg
      $ trace_arg $ jobs_arg $ nonsparse_budget $ provenance_arg $ profile_flag)

(* -- races ------------------------------------------------------------------- *)

let races source json trace jobs provenance =
  with_program
    (fun prog ->
      arm_crash_flush ~json ~trace;
      let d = D.run ~config:{ D.default_config with jobs; provenance } prog in
      let rs = Fsam_core.Races.detect ~jobs d in
      if rs = [] then Format.printf "no data races found@."
      else begin
        Format.printf "%d potential data race(s):@." (List.length rs);
        List.iteri
          (fun i r ->
            Format.printf "  [%d] %a@." i (Fsam_core.Races.pp_race d) r;
            match Fsam_core.Explain.witness d r with
            | Some w -> Format.printf "  %a@." (Fsam_core.Explain.pp_witness d) w
            | None -> ())
          rs
      end;
      export ~json ~trace (fun () -> T.races_json d rs))
    source

let races_cmd =
  Cmd.v
    (Cmd.info "races" ~doc:"Detect data races using FSAM's points-to results")
    Term.(const races $ source_arg $ json_arg $ trace_arg $ jobs_arg $ provenance_arg)

(* -- explain ------------------------------------------------------------------ *)

module E = Fsam_core.Explain
module J = Fsam_obs.Json

(* Accept a numeric id or a source-level name for vars and objects. *)
let resolve ~what n name_of s =
  match int_of_string_opt s with
  | Some i when i >= 0 && i < n -> i
  | _ ->
    let rec scan i =
      if i >= n then begin
        Printf.eprintf "error: unknown %s %S\n" what s;
        exit 1
      end
      else if String.equal (name_of i) s then i
      else scan (i + 1)
    in
    scan 0

let split_args ~what ~n s =
  let parts = String.split_on_char ',' (String.trim s) in
  if List.length parts <> n then begin
    Printf.eprintf "error: %s expects %d comma-separated arguments, got %S\n" what n s;
    exit 1
  end;
  List.map String.trim parts

let parse_gid prog s =
  match int_of_string_opt s with
  | Some g when g >= 0 && g < Prog.n_stmts prog -> g
  | _ ->
    Printf.eprintf "error: %S is not a statement gid (0..%d)\n" s (Prog.n_stmts prog - 1);
    exit 1

let explain source why_pt why_andersen why_mhp why_edge why_race json max_depth jobs =
  with_program
    (fun prog ->
      if why_pt = None && why_andersen = None && why_mhp = None && why_edge = None
         && why_race = None
      then begin
        Printf.eprintf
          "error: nothing to explain — pass --why-pt, --why-pt-andersen, --why-mhp, \
           --why-edge or --why-race\n";
        exit 1
      end;
      (* provenance is the whole point of this command *)
      let d = D.run ~config:{ D.default_config with jobs; provenance = true } prog in
      let queries = ref [] in
      let record q j = queries := J.Obj [ ("query", J.String q); ("result", j) ] :: !queries in
      let var_of = resolve ~what:"variable" (Prog.n_vars prog) (Prog.var_name prog) in
      let obj_of = resolve ~what:"object" (Prog.n_objs prog) (Prog.obj_name prog) in
      (match why_pt with
      | None -> ()
      | Some s ->
        let v, o =
          match split_args ~what:"--why-pt" ~n:2 s with
          | [ sv; so ] -> (var_of sv, obj_of so)
          | _ -> assert false
        in
        (match E.why_pt ~max_depth d v o with
        | None ->
          Format.printf "pt(%s) does not contain %s@." (Prog.var_name prog v)
            (Prog.obj_name prog o);
          record ("why-pt " ^ s) J.Null
        | Some chain ->
          Format.printf "%a" (E.pp_chain d) chain;
          Format.printf "replay: %s@." (if E.replay d chain then "ok" else "FAILED");
          record ("why-pt " ^ s) (E.chain_json d chain)));
      (match why_andersen with
      | None -> ()
      | Some s ->
        let v, o =
          match split_args ~what:"--why-pt-andersen" ~n:2 s with
          | [ sv; so ] -> (var_of sv, obj_of so)
          | _ -> assert false
        in
        (match E.why_pt_andersen ~max_depth d v o with
        | None ->
          Format.printf "andersen pt(%s) does not contain %s@." (Prog.var_name prog v)
            (Prog.obj_name prog o);
          record ("why-pt-andersen " ^ s) J.Null
        | Some chain ->
          Format.printf "%a" (E.pp_chain d) chain;
          Format.printf "replay: %s@." (if E.replay d chain then "ok" else "FAILED");
          record ("why-pt-andersen " ^ s) (E.chain_json d chain)));
      (match why_mhp with
      | None -> ()
      | Some s ->
        let g1, g2 =
          match split_args ~what:"--why-mhp" ~n:2 s with
          | [ a; b ] -> (parse_gid prog a, parse_gid prog b)
          | _ -> assert false
        in
        (match E.why_mhp d g1 g2 with
        | None ->
          Format.printf "#%d and #%d never happen in parallel@." g1 g2;
          record ("why-mhp " ^ s) J.Null
        | Some j ->
          Format.printf "%a@." (E.pp_mhp d) j;
          record ("why-mhp " ^ s) (E.mhp_json d j)));
      (match why_edge with
      | None -> ()
      | Some s ->
        let store, o, access =
          match split_args ~what:"--why-edge" ~n:3 s with
          | [ a; b; c ] -> (parse_gid prog a, obj_of b, parse_gid prog c)
          | _ -> assert false
        in
        let v = E.why_edge d ~store ~obj:o ~access in
        Format.printf "[THREAD-VF] %d --%s--> %d: %a@." store (Prog.obj_name prog o)
          access (E.pp_edge_verdict d) v;
        record ("why-edge " ^ s) (E.edge_verdict_json d v));
      (match why_race with
      | None -> ()
      | Some idx ->
        let rs = Fsam_core.Races.detect ~jobs d in
        if idx < 0 || idx >= List.length rs then begin
          Printf.eprintf "error: race index %d out of range (%d race(s) found)\n" idx
            (List.length rs);
          exit 1
        end;
        let r = List.nth rs idx in
        (match E.witness d r with
        | Some w ->
          Format.printf "%a@." (E.pp_witness d) w;
          record (Printf.sprintf "why-race %d" idx) (E.witness_json d w)
        | None ->
          (* unreachable: provenance is forced on above *)
          Format.printf "no witness for race %d@." idx;
          record (Printf.sprintf "why-race %d" idx) J.Null));
      match json with
      | None -> ()
      | Some path ->
        let doc =
          J.Obj
            [
              ("schema", J.String "fsam.explain/1");
              ("program", J.String source);
              ("queries", J.List (List.rev !queries));
            ]
        in
        if path = "-" then J.to_channel stdout doc
        else begin
          try T.write_json path doc
          with Sys_error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1
        end)
    source

let explain_cmd =
  let opt_str names docv doc =
    Arg.(value & opt (some string) None & info names ~docv ~doc)
  in
  let why_pt =
    opt_str [ "why-pt" ] "VAR,OBJ"
      "Explain why the sparse solution has OBJ in pt(VAR). VAR and OBJ are \
       source names or numeric ids."
  in
  let why_andersen =
    opt_str [ "why-pt-andersen" ] "VAR,OBJ"
      "Same question against the Andersen pre-analysis (inclusion-edge chain)."
  in
  let why_mhp =
    opt_str [ "why-mhp" ] "GID1,GID2"
      "Explain why two statement gids may happen in parallel: witness instance \
       pair, thread relation and fork chains."
  in
  let why_edge =
    opt_str [ "why-edge" ] "STORE,OBJ,ACCESS"
      "Show the recorded [THREAD-VF] verdict for the candidate pair: kept \
       (racy or protected-but-interfering), filtered by the lock-span \
       non-interference test (with the justifying span pair), or skipped by MHP."
  in
  let why_race =
    Arg.(value & opt (some int) None
         & info [ "why-race" ] ~docv:"N"
             ~doc:"Print the full witness of the N-th race (0-based, as numbered \
                   by $(b,fsam races)).")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write all query results as one JSON document ($(b,-) for stdout).")
  in
  let max_depth =
    Arg.(value & opt int 64
         & info [ "max-depth" ] ~docv:"N" ~doc:"Derivation-chain depth bound.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain analysis results from recorded provenance"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Re-runs the analysis with provenance recording forced on, then \
              answers one or more queries from the recorded derivations: \
              points-to chains, MHP justifications, [THREAD-VF] edge verdicts \
              and full race witnesses. Recording changes no results.";
         ])
    Term.(
      const explain $ source_arg $ why_pt $ why_andersen $ why_mhp $ why_edge
      $ why_race $ json $ max_depth $ jobs_arg)

(* -- deadlocks ---------------------------------------------------------------- *)

let deadlocks source jobs =
  with_program
    (fun prog ->
      let d = D.run ~config:{ D.default_config with jobs } prog in
      let dls = Fsam_core.Deadlocks.detect ~jobs d in
      if dls = [] then Format.printf "no lock-order cycles found@."
      else begin
        Format.printf "%d potential deadlock(s):@." (List.length dls);
        List.iter
          (fun dl -> Format.printf "  %a@." (Fsam_core.Deadlocks.pp_deadlock d) dl)
          dls
      end)
    source

let deadlocks_cmd =
  Cmd.v
    (Cmd.info "deadlocks" ~doc:"Detect lock-order-cycle deadlocks")
    Term.(const deadlocks $ source_arg $ jobs_arg)

(* -- leaks --------------------------------------------------------------------- *)

let leaks source jobs =
  with_program
    (fun prog ->
      let d = D.run ~config:{ D.default_config with jobs } prog in
      let fs = Fsam_core.Leaks.detect ~jobs d in
      if fs = [] then Format.printf "no memory-leak findings@."
      else
        List.iter (fun f -> Format.printf "%a@." (Fsam_core.Leaks.pp_finding d) f) fs)
    source

let leaks_cmd =
  Cmd.v
    (Cmd.info "leaks" ~doc:"Detect never-freed allocations and double frees")
    Term.(const leaks $ source_arg $ jobs_arg)

(* -- instrument ---------------------------------------------------------------- *)

let instrument source =
  with_program
    (fun prog ->
      let d = D.run prog in
      let r = Fsam_core.Instrument.analyze d in
      Format.printf
        "%d of %d loads/stores need dynamic race checks (%.1f%% of instrumentation \
         removable)@."
        r.Fsam_core.Instrument.instrumented r.Fsam_core.Instrument.total_accesses
        (100. *. r.Fsam_core.Instrument.reduction))
    source

let instrument_cmd =
  Cmd.v
    (Cmd.info "instrument"
       ~doc:"Report which accesses a dynamic race detector must instrument")
    Term.(const instrument $ source_arg)

(* -- dump-ir ------------------------------------------------------------------ *)

let dump_ir source =
  with_program (fun prog -> Format.printf "%a@." Prog.pp prog) source

let dump_ir_cmd =
  Cmd.v
    (Cmd.info "dump-ir" ~doc:"Print the partial-SSA IR of a program")
    Term.(const dump_ir $ source_arg)

(* -- report ------------------------------------------------------------------- *)

let report source =
  with_program
    (fun prog ->
      let d = D.run prog in
      Format.printf "%a@." Fsam_core.Report.pp (Fsam_core.Report.build d))
    source

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"Full per-phase statistics of one FSAM run")
    Term.(const report $ source_arg)

(* -- profile ------------------------------------------------------------------ *)

module P = Fsam_obs.Profile
module Tl = Fsam_obs.Timeline

(* Per-item durations of one lane's ring: the gap between consecutive
   [k_item] timestamps (the last item is bounded by the chunk stop). Top
   keys by duration are the imbalance attribution — "which object/chunk
   keys dominated". *)
let hot_keys ring ~limit =
  let evs = Tl.events ring in
  let stop_t =
    List.fold_left (fun acc (t, k, _, _) -> if k = Tl.k_chunk_stop then t else acc) 0 evs
  in
  let items = List.filter (fun (_, k, _, _) -> k = Tl.k_item) evs in
  let rec durations = function
    | (t, _, key, _) :: ((t', _, _, _) :: _ as rest) ->
      (key, t' - t) :: durations rest
    | [ (t, _, key, _) ] -> [ (key, max 0 (stop_t - t)) ]
    | [] -> []
  in
  let ds = List.sort (fun (_, a) (_, b) -> compare b a) (durations items) in
  List.filteri (fun i _ -> i < limit) ds

let pct num den = if den <= 0 then 100 else 100 * num / den

let print_hotspots ~top forest =
  let hs = P.hotspots forest in
  Format.printf "@.top %d spans by exclusive wall time:@." top;
  Format.printf "  %-28s %6s %10s %10s %10s@." "span" "count" "self-wall" "self-cpu" "wall";
  List.iteri
    (fun i h ->
      if i < top then
        Format.printf "  %-28s %6d %9.3fms %9.3fms %9.3fms@." h.P.hs_name h.P.hs_count
          (h.P.hs_self_wall_s *. 1e3) (h.P.hs_self_cpu_s *. 1e3) (h.P.hs_wall_s *. 1e3))
    hs

let print_regions () =
  let regions = P.regions () in
  if regions = [] then
    Format.printf "@.parallel regions: none recorded (serial run or empty ranges)@."
  else begin
    Format.printf "@.parallel regions:@.";
    List.iter
      (fun r ->
        let lanes = r.P.rs_lanes in
        let mx = List.fold_left (fun a l -> max a l.P.ls_busy_us) 0 lanes in
        let mn = List.fold_left (fun a l -> min a l.P.ls_busy_us) max_int lanes in
        let imb = if mx <= 0 then 0 else 100 * (mx - mn) / mx in
        Format.printf
          "  %-18s wall %6dus  lanes %d  utilization %3d%%  imbalance %3d%%@."
          r.P.rs_region r.P.rs_wall_us (List.length lanes) (P.utilization_pct r) imb;
        List.iter
          (fun l ->
            Format.printf
              "    domain %d: busy %6dus (%3d%%)  range [%d,%d)  items %d  events %d%s%s@."
              l.P.ls_lane l.P.ls_busy_us (pct l.P.ls_busy_us r.P.rs_wall_us) l.P.ls_lo
              l.P.ls_hi l.P.ls_items l.P.ls_events
              (if l.P.ls_contention > 0 then
                 Printf.sprintf "  intern-contention %d" l.P.ls_contention
               else "")
              (if l.P.ls_dropped > 0 then Printf.sprintf "  dropped %d" l.P.ls_dropped
               else ""))
          lanes;
        match P.dominant_lane r with
        | Some l when List.length lanes > 1 ->
          let ring =
            List.find_opt
              (fun (rg : Tl.ring) -> rg.Tl.region = r.P.rs_region && rg.Tl.lane = l.P.ls_lane)
              (Tl.collected ())
          in
          let keys =
            match ring with Some rg -> hot_keys rg ~limit:3 | None -> []
          in
          Format.printf "    dominant: domain %d (busy %dus)%s@." l.P.ls_lane l.P.ls_busy_us
            (match keys with
            | [] -> ""
            | ks ->
              "  hot keys: "
              ^ String.concat ", "
                  (List.map (fun (k, d) -> Printf.sprintf "%d (%dus)" k d) ks))
        | _ -> ())
      regions
  end

let print_convergence () =
  let samples = P.samples () in
  let stalls = P.stalls () in
  Format.printf "@.convergence (sampled every %d propagations):@." (P.sample_interval ());
  match samples with
  | [] -> Format.printf "  no samples (solver finished under one interval)@."
  | _ ->
    let last = List.nth samples (List.length samples - 1) in
    let hits = List.fold_left (fun a s -> a + s.P.s_memo_hits) 0 samples in
    let misses = List.fold_left (fun a s -> a + s.P.s_memo_misses) 0 samples in
    let peak = List.fold_left (fun a s -> max a s.P.s_depth) 0 samples in
    Format.printf
      "  %d samples; final: %d propagations, %d facts; peak depth %d; memo hit rate %d%%@."
      (List.length samples) last.P.s_prop last.P.s_facts peak
      (pct hits (hits + misses));
    List.iteri
      (fun i s ->
        if i < 5 || i >= List.length samples - 5 || List.length samples <= 10 then
          Format.printf
            "    prop %7d  depth %6d  +facts %6d  rank %5d  scc %5d  memo %3d%%@."
            s.P.s_prop s.P.s_depth s.P.s_facts_delta s.P.s_rank s.P.s_scc_size
            (pct s.P.s_memo_hits (s.P.s_memo_hits + s.P.s_memo_misses))
        else if i = 5 then Format.printf "    ...@.")
      samples;
    if stalls = [] then Format.printf "  no stalls detected@."
    else
      List.iter
        (fun st ->
          Format.printf
            "  STALL at propagation %d: no new facts for %d samples (rank %d, SCC size %d)@."
            st.P.st_prop st.P.st_samples st.P.st_rank st.P.st_scc_size)
        stalls

let profile_run source config_name scheduler_name json trace jobs top =
  with_program
    (fun prog ->
      arm_crash_flush ~json ~trace;
      match
        Result.bind (config_of_string config_name) (fun config ->
            Result.map
              (fun scheduler -> { config with D.scheduler })
              (scheduler_of_string scheduler_name))
      with
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
      | Ok config ->
        let config = { config with D.jobs; profile = true } in
        let m = Fsam_core.Measure.run (fun () -> D.run ~config prog) in
        let _d : D.t = m.Fsam_core.Measure.value in
        Format.printf "profile: %s  (config %s, jobs %d, %.3fs wall, %.3fs cpu)@." source
          config_name (Fsam_par.resolve_jobs jobs) m.Fsam_core.Measure.wall_seconds
          m.Fsam_core.Measure.cpu_seconds;
        print_hotspots ~top (Fsam_obs.Span.roots ());
        print_regions ();
        print_convergence ();
        let mk_doc () =
          let measure =
            J.Obj
              [
                ("wall_seconds", J.Float m.Fsam_core.Measure.wall_seconds);
                ("cpu_seconds", J.Float m.Fsam_core.Measure.cpu_seconds);
                ("live_mb", J.Float m.Fsam_core.Measure.live_mb);
              ]
          in
          match P.to_json () with
          | J.Obj (schema :: rest) ->
            J.Obj
              (schema
              :: ("program", J.String source)
              :: ("jobs", J.Int (Fsam_par.resolve_jobs jobs))
              :: ("measure", measure)
              :: rest)
          | j -> j
        in
        (try
           (match json with
           | Some "-" -> J.to_channel stdout (mk_doc ())
           | Some path -> T.write_json path (mk_doc ())
           | None -> ());
           (match trace with Some path -> T.write_trace path | None -> ());
           T.mark_flushed ();
           Fsam_obs.Trace.mark_flushed ()
         with Sys_error msg ->
           Printf.eprintf "error: %s\n" msg;
           exit 1))
    source

let profile_cmd =
  let scheduler =
    Arg.(value & opt string "priority" & info [ "scheduler" ] ~docv:"SCHED"
           ~doc:"Sparse-solver worklist scheduler: priority or fifo.")
  in
  let top =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N" ~doc:"How many spans to show in the hotspot table.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the profile document (convergence curve, region/lane stats, \
                   raw timelines) as JSON; $(b,-) for stdout.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run FSAM with the execution profiler and print the report"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the full pipeline with profiling enabled, then reports: the top \
              spans by exclusive time, per-domain utilization of every parallel \
              region with imbalance attribution (dominant lane and its hottest item \
              keys), and the sparse solver's convergence curve with stall warnings. \
              Profiling changes no analysis results — reports are byte-identical \
              with it on or off, for every --jobs value.";
           `P
             "With $(b,--trace) the Chrome trace gains one lane per domain \
              (open in Perfetto); with $(b,--json) the raw profile document is \
              exported for tooling.";
         ])
    Term.(
      const profile_run $ source_arg $ config_arg $ scheduler $ json $ trace_arg
      $ jobs_arg $ top)

(* -- dot ---------------------------------------------------------------------- *)

let dot source what out =
  with_program
    (fun prog ->
      let d = D.run prog in
      let text =
        match what with
        | "svfg" -> Fsam_core.Dot.svfg d
        | "callgraph" -> Fsam_core.Dot.call_graph d
        | w when String.length w > 4 && String.sub w 0 4 = "cfg:" -> (
          let fname = String.sub w 4 (String.length w - 4) in
          match Prog.find_func prog fname with
          | Some fid -> Fsam_core.Dot.cfg_of d fid
          | None ->
            Printf.eprintf "error: unknown function %S\n" fname;
            exit 1)
        | w ->
          Printf.eprintf "error: unknown graph %S (svfg | callgraph | cfg:<fn>)\n" w;
          exit 1
      in
      match out with
      | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc
      | None -> print_string text)
    source

let dot_cmd =
  let what =
    Arg.(value & opt string "svfg" & info [ "graph" ] ~docv:"WHAT"
           ~doc:"Graph to export: svfg, callgraph, or cfg:<function>.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export analysis graphs in Graphviz format")
    Term.(const dot $ source_arg $ what $ out)

(* -- interp ------------------------------------------------------------------- *)

let interp source seed =
  with_program
    (fun prog ->
      let r = Fsam_interp.Interp.run ~seed prog in
      Format.printf "executed %d steps, %d points-to observations@." r.Fsam_interp.Interp.steps
        (List.length r.Fsam_interp.Interp.observations))
    source

let interp_cmd =
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")
  in
  Cmd.v
    (Cmd.info "interp" ~doc:"Execute a program under a random thread schedule")
    Term.(const interp $ source_arg $ seed)

(* -- serve --------------------------------------------------------------------- *)

let serve program jobs differential provenance batch socket crash_telemetry slow_ms
    slow_log flight stats_socket =
  let eng = Fsam_serve.Engine.create ~jobs ~provenance ~differential () in
  (match program with
  | None -> ()
  | Some source ->
    let text =
      match Fsam_workloads.Suite.find source with
      | Some _ ->
        Printf.eprintf
          "error: %S is an IR-level benchmark; serve needs MiniC source (a file, \
           or load with {\"synth\": ...})\n"
          source;
        exit 1
      | None -> (
        try read_file source
        with Sys_error e ->
          Printf.eprintf "error: %s\n" e;
          exit 1)
    in
    (match Fsam_serve.Engine.load eng text with
    | Ok _ -> ()
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1));
  let stats = Fsam_serve.Stats.create ~flight_cap:flight ~slow_ms ?slow_log () in
  let srv = Fsam_serve.Protocol.create ?crash_telemetry ~stats eng in
  Fsam_serve.Protocol.install_sigusr1 srv;
  let scraper =
    match stats_socket with
    | None -> None
    | Some path -> (
      try Some (Fsam_serve.Protocol.start_stats_socket srv path)
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "error: cannot bind stats socket %s: %s\n" path
          (Unix.error_message e);
        exit 1)
  in
  Fun.protect
    ~finally:(fun () ->
      (match scraper with
      | Some s -> Fsam_serve.Protocol.stop_stats_socket s
      | None -> ());
      Fsam_serve.Stats.close stats)
    (fun () ->
      match (batch, socket) with
      | Some _, Some _ ->
        Printf.eprintf "error: --batch and --socket are mutually exclusive\n";
        exit 1
      | Some file, None -> Fsam_serve.Protocol.serve_batch srv file
      | None, Some path -> Fsam_serve.Protocol.serve_socket srv path
      | None, None -> Fsam_serve.Protocol.serve_stdio srv)

let serve_cmd =
  let program =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"PROGRAM"
             ~doc:"MiniC source file to load before serving (optional; clients \
                   can also send a $(b,load) request).")
  in
  let differential =
    Arg.(value & flag
         & info [ "differential" ]
             ~doc:"Cross-check every incremental edit against a cold re-run: \
                   replies carry $(b,identical) and $(b,cold_propagations).")
  in
  let batch =
    Arg.(value & opt (some string) None
         & info [ "batch" ] ~docv:"FILE"
             ~doc:"Read NDJSON requests from FILE instead of stdin, write \
                   replies to stdout, then exit.")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket instead of stdin/stdout.")
  in
  let crash_telemetry =
    Arg.(value & opt (some string) None
         & info [ "crash-telemetry" ] ~docv:"FILE"
             ~doc:"Arm a telemetry crash flush to FILE around each request.")
  in
  let slow_ms =
    Arg.(value & opt float 100.0
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Slow-query threshold: requests strictly over MS emit a \
                   structured NDJSON line (params and phase breakdown). \
                   Negative disables the log.")
  in
  let slow_log =
    Arg.(value & opt (some string) None
         & info [ "slow-log" ] ~docv:"FILE"
             ~doc:"Append slow-query lines to FILE instead of stderr.")
  in
  let flight =
    Arg.(value & opt int 256
         & info [ "flight" ] ~docv:"N"
             ~doc:"Flight-recorder capacity: journal the last N request \
                   summaries (dumped by the $(b,dump) op, SIGUSR1, and the \
                   crash flush). 0 disables the recorder.")
  in
  let stats_socket =
    Arg.(value & opt (some string) None
         & info [ "stats-socket" ] ~docv:"PATH"
             ~doc:"Serve a Prometheus text exposition on a dedicated \
                   Unix-domain socket (one scrape per connection), so \
                   scrapers never contend with query traffic.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Resident incremental-analysis daemon (NDJSON over stdin/stdout)"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Parses a MiniC program once, keeps the full analysis state \
              resident, and answers queries (points-to, alias, MHP, races, \
              explain) over a line-oriented JSON protocol. An $(b,edit) \
              request replacing one function re-analyses incrementally: the \
              pre-phases re-run cold, the sparse solve warm-starts from the \
              previous generation's clean slice — byte-identical results in \
              a fraction of the propagations. $(b,snapshot)/$(b,restore) \
              persist the resident state across daemon restarts. See \
              docs/GUIDE.md for the protocol reference.";
         ])
    Term.(
      const serve $ program $ jobs_arg $ differential $ provenance_arg $ batch
      $ socket $ crash_telemetry $ slow_ms $ slow_log $ flight $ stats_socket)

(* -- top ----------------------------------------------------------------------- *)

let top socket interval count json =
  let module J = Fsam_obs.Json in
  let poll () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX socket);
        let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
        output_string oc
          "{\"id\":\"top\",\"op\":\"status\"}\n{\"id\":\"top\",\"op\":\"stats\"}\n";
        flush oc;
        let status_line = input_line ic in
        let stats_line = input_line ic in
        let parse what line =
          match J.of_string line with
          | Ok j -> j
          | Error e ->
            Printf.eprintf "error: bad %s reply: %s\n" what e;
            exit 1
        in
        (parse "status" status_line, parse "stats" stats_line))
  in
  let prev = ref None in
  let rec loop remaining =
    if remaining <> Some 0 then begin
      (match poll () with
      | status, stats ->
        let doc =
          Fsam_serve.Topview.doc_of ~now:(Unix.gettimeofday ()) ?prev:!prev ~status
            ~stats ()
        in
        prev := Some (Fsam_serve.Topview.prev_of doc);
        if json then print_endline (J.to_string ~minify:true doc)
        else begin
          (* clear screen + home, like top(1) *)
          print_string "\027[2J\027[H";
          print_string (Fsam_serve.Topview.render doc)
        end;
        flush stdout
      | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "error: cannot poll %s: %s\n" socket (Unix.error_message e);
        exit 1
      | exception End_of_file ->
        Printf.eprintf "error: daemon closed the connection mid-poll\n";
        exit 1);
      let remaining = Option.map (fun n -> n - 1) remaining in
      if remaining <> Some 0 then Unix.sleepf interval;
      loop remaining
    end
  in
  loop (if count = 0 then None else Some count)

let top_cmd =
  let socket =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket of the running daemon (its --socket).")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh interval.")
  in
  let count =
    Arg.(value & opt int 0
         & info [ "count" ] ~docv:"N"
             ~doc:"Render N samples then exit (0 = run until interrupted).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print one minified fsam.top/1 JSON document per sample \
                   instead of the dashboard.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live dashboard over a running fsam serve daemon"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Polls a running daemon's $(b,status) and $(b,stats) ops over \
              its Unix socket (a fresh connection per sample, so queries \
              are never blocked) and renders request rates, per-op latency \
              quantiles, warm/cold fallback reasons, last-edit phase walls \
              and GC pressure. With $(b,--json), emits one fsam.top/1 \
              document per sample for scripting.";
         ])
    Term.(const top $ socket $ interval $ count $ json)

(* -- list ---------------------------------------------------------------------- *)

let list_benchmarks () =
  List.iter
    (fun (s : Fsam_workloads.Suite.spec) ->
      let prog = s.build s.scale in
      let stmts, funcs, forks, joins, locks = Fsam_workloads.Suite.program_stats prog in
      Format.printf "%-14s %-45s stmts=%-6d funcs=%-4d forks=%d joins=%d locks=%d@." s.name
        s.description stmts funcs forks joins locks)
    Fsam_workloads.Suite.all

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in benchmark programs")
    Term.(const list_benchmarks $ const ())

let () =
  let info =
    Cmd.info "fsam" ~version:"1.0.0"
      ~doc:"Sparse flow-sensitive pointer analysis for multithreaded programs (CGO'16)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyze_cmd;
            races_cmd;
            explain_cmd;
            deadlocks_cmd;
            leaks_cmd;
            instrument_cmd;
            report_cmd;
            profile_cmd;
            dump_ir_cmd;
            dot_cmd;
            interp_cmd;
            serve_cmd;
            top_cmd;
            list_cmd;
          ]))
